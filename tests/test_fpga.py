"""Tests of the FPGA synthesis substrate: mapping, packing, timing, power."""

import numpy as np
import pytest

from repro.circuits import NetlistBuilder
from repro.fpga import (
    FpgaSynthesizer,
    default_device,
    estimate_synthesis_time,
    map_to_luts,
    pack_slices,
    synthesize_fpga,
)
from repro.generators import (
    array_multiplier,
    lower_or_adder,
    ripple_carry_adder,
    truncated_multiplier,
    wallace_multiplier,
)


def test_lut_inputs_respect_k(multiplier8):
    mapping = map_to_luts(multiplier8, lut_size=6)
    assert mapping.num_luts > 0
    for lut in mapping.luts:
        assert 1 <= lut.num_inputs <= 6


def test_lut_count_not_more_than_live_gates(multiplier8):
    mapping = map_to_luts(multiplier8, lut_size=6)
    assert mapping.num_luts <= multiplier8.live_gate_count()


def test_smaller_lut_size_needs_more_luts(multiplier8):
    luts_4 = map_to_luts(multiplier8, lut_size=4).num_luts
    luts_6 = map_to_luts(multiplier8, lut_size=6).num_luts
    assert luts_4 >= luts_6


def test_every_output_has_a_source(multiplier4):
    mapping = map_to_luts(multiplier4)
    assert set(mapping.output_sources) == set(multiplier4.output_bits)
    assert set(mapping.output_sources.values()) <= {"lut", "input", "constant"}


def test_constant_and_wire_circuits_need_no_luts():
    builder = NetlistBuilder("wires", kind="adder")
    a = builder.add_input_word("a", 4)
    builder.add_input_word("b", 4)
    zero = builder.const0()
    netlist = builder.finish([a[0], a[1], zero, zero])
    mapping = map_to_luts(netlist)
    assert mapping.num_luts == 0


def test_buffers_are_absorbed():
    builder = NetlistBuilder("bufs", kind="adder")
    a = builder.add_input_word("a", 2)
    b = builder.add_input_word("b", 2)
    buffered = builder.buf(builder.buf(a[0]))
    out = builder.xor(buffered, b[0])
    netlist = builder.finish([out])
    mapping = map_to_luts(netlist)
    assert mapping.num_luts == 1


def test_single_gate_maps_to_single_lut():
    builder = NetlistBuilder("one", kind="adder")
    a = builder.add_input_word("a", 1)
    b = builder.add_input_word("b", 1)
    netlist = builder.finish([builder.and_(a[0], b[0])])
    mapping = map_to_luts(netlist)
    assert mapping.num_luts == 1
    assert mapping.depth == 1


def test_mapping_depth_not_more_than_gate_depth(multiplier8):
    mapping = map_to_luts(multiplier8)
    assert 0 < mapping.depth <= multiplier8.depth()


# --------------------------------------------------------------------- #
def test_packing_capacity(multiplier8):
    device = default_device()
    mapping = map_to_luts(multiplier8, lut_size=device.lut_size)
    packing = pack_slices(mapping, device)
    assert packing.num_luts == mapping.num_luts
    assert all(s.occupancy <= device.luts_per_slice for s in packing.slices)
    lower_bound = -(-mapping.num_luts // device.luts_per_slice)
    assert packing.num_slices >= lower_bound
    assert packing.num_slices <= mapping.num_luts


# --------------------------------------------------------------------- #
def test_fpga_report_fields(multiplier8):
    report = synthesize_fpga(multiplier8)
    assert report.luts > 0
    assert report.slices > 0
    assert report.logic_levels > 0
    assert report.latency_ns > 0.0
    assert report.total_power_mw > 0.0
    assert report.synthesis_time_s > 0.0
    assert report.parameter("area") == report.luts
    assert report.parameter("latency") == report.latency_ns
    assert report.parameter("power") == report.total_power_mw
    with pytest.raises(KeyError):
        report.parameter("unknown")


def test_latency_at_least_one_lut_plus_routing(adder8):
    device = default_device()
    report = synthesize_fpga(adder8)
    assert report.latency_ns >= device.lut_delay_ns + device.input_delay_ns


def test_truncation_reduces_fpga_cost():
    exact = synthesize_fpga(array_multiplier(8))
    truncated = synthesize_fpga(truncated_multiplier(8, 6))
    assert truncated.luts < exact.luts
    assert truncated.latency_ns <= exact.latency_ns


def test_loa_reduces_adder_latency():
    exact = synthesize_fpga(ripple_carry_adder(16))
    approximate = synthesize_fpga(lower_or_adder(16, 8))
    assert approximate.latency_ns < exact.latency_ns
    assert approximate.luts < exact.luts


def test_wallace_faster_on_fpga_than_array():
    array_report = synthesize_fpga(array_multiplier(8))
    wallace_report = synthesize_fpga(wallace_multiplier(8))
    assert wallace_report.latency_ns < array_report.latency_ns


def test_fpga_synthesis_deterministic(multiplier4):
    synthesizer = FpgaSynthesizer()
    assert synthesizer.synthesize(multiplier4) == synthesizer.synthesize(multiplier4)


def test_synthesis_time_grows_with_circuit_size():
    small = estimate_synthesis_time(array_multiplier(4))
    medium = estimate_synthesis_time(array_multiplier(8))
    large = estimate_synthesis_time(array_multiplier(16))
    assert small < medium < large


def test_synthesis_time_order_of_minutes_for_8x8():
    seconds = estimate_synthesis_time(array_multiplier(8))
    # Calibration target: the paper implies roughly 15-20 minutes per circuit.
    assert 300.0 < seconds < 3600.0


def test_asic_fpga_pareto_divergence(small_multiplier_library, fpga_synth, asic_synth):
    """The motivational observation: ASIC cost ordering != FPGA cost ordering."""
    circuits = list(small_multiplier_library)[:30]
    asic_area = np.array([asic_synth.synthesize(c).area_um2 for c in circuits])
    fpga_area = np.array([fpga_synth.synthesize(c).luts for c in circuits])
    asic_order = np.argsort(asic_area)
    fpga_order = np.argsort(fpga_area)
    assert not np.array_equal(asic_order, fpga_order)
