"""Unit tests for the Netlist IR and the NetlistBuilder."""

import numpy as np
import pytest

from repro.circuits import Gate, GateType, Netlist, NetlistBuilder, NetlistError


def build_tiny_xor():
    builder = NetlistBuilder("tiny_xor", kind="adder")
    a = builder.add_input_word("a", 1)
    b = builder.add_input_word("b", 1)
    s = builder.xor(a[0], b[0])
    c = builder.and_(a[0], b[0])
    return builder.finish([s, c])


def test_builder_produces_valid_netlist():
    netlist = build_tiny_xor()
    netlist.validate()
    assert netlist.num_inputs == 2
    assert netlist.num_outputs == 2
    assert netlist.num_gates == 2


def test_builder_rejects_inputs_after_gates():
    builder = NetlistBuilder("bad", kind="adder")
    builder.add_input_word("a", 1)
    builder.const0()
    with pytest.raises(ValueError):
        builder.add_input_word("b", 1)


def test_builder_rejects_duplicate_word():
    builder = NetlistBuilder("bad", kind="adder")
    builder.add_input_word("a", 2)
    with pytest.raises(ValueError):
        builder.add_input_word("a", 2)


def test_builder_rejects_forward_reference():
    builder = NetlistBuilder("bad", kind="adder")
    a = builder.add_input_word("a", 1)
    with pytest.raises(ValueError):
        builder.add_gate(GateType.AND, a[0], 99)


def test_validate_detects_nontopological_gates():
    netlist = Netlist(
        name="broken",
        kind="adder",
        input_words={"a": (0,)},
        output_bits=(1,),
        gates=[Gate(GateType.AND, 0, 2), Gate(GateType.BUF, 0)],
    )
    with pytest.raises(NetlistError):
        netlist.validate()


def test_validate_detects_bad_output_reference():
    netlist = Netlist(
        name="broken",
        kind="adder",
        input_words={"a": (0,)},
        output_bits=(5,),
        gates=[],
    )
    with pytest.raises(NetlistError):
        netlist.validate()


def test_validate_detects_unassigned_inputs():
    netlist = Netlist(
        name="broken",
        kind="adder",
        input_words={"a": (0,)},
        output_bits=(0,),
        gates=[Gate(GateType.BUF, 1)],
    )
    # input node 1 exists implicitly (num_inputs counts word bits only), so the
    # gate references an out-of-range node.
    with pytest.raises(NetlistError):
        netlist.validate()


def test_depth_and_fanout():
    netlist = build_tiny_xor()
    assert netlist.depth() == 1
    fanouts = netlist.fanout_counts()
    # Each input feeds the XOR and the AND.
    assert fanouts[0] == 2
    assert fanouts[1] == 2


def test_const_cache_shared(adder8):
    builder = NetlistBuilder("consts", kind="adder")
    builder.add_input_word("a", 1)
    builder.add_input_word("b", 1)
    first = builder.const0()
    second = builder.const0()
    assert first == second


def test_half_and_full_adder_truth():
    builder = NetlistBuilder("fa", kind="adder")
    a = builder.add_input_word("a", 1)
    b = builder.add_input_word("b", 1)
    c = builder.add_input_word("c", 1)
    total, carry = builder.full_adder(a[0], b[0], c[0])
    netlist = builder.finish([total, carry])
    outputs = netlist.exhaustive_outputs()
    grid = np.array(np.meshgrid(np.arange(2), np.arange(2), np.arange(2), indexing="ij"))
    expected = grid.reshape(3, -1).sum(axis=0)
    assert np.array_equal(outputs, expected)


def test_mux_selects_correct_input():
    builder = NetlistBuilder("mux", kind="adder")
    s = builder.add_input_word("s", 1)
    x = builder.add_input_word("x", 1)
    y = builder.add_input_word("y", 1)
    out = builder.mux(s[0], x[0], y[0])
    netlist = builder.finish([out])
    values = netlist.evaluate_words({"s": [0, 0, 1, 1], "x": [0, 1, 0, 1], "y": [1, 0, 1, 0]})
    assert values.tolist() == [0, 1, 1, 0]


def test_pruned_removes_dead_logic_preserving_function(adder8):
    builder = NetlistBuilder("dead", kind="adder")
    a = builder.add_input_word("a", 2)
    b = builder.add_input_word("b", 2)
    live = builder.xor(a[0], b[0])
    builder.and_(a[1], b[1])  # dead gate
    netlist = builder.finish([live])
    pruned = netlist.pruned()
    assert pruned.num_gates < netlist.num_gates
    operands = {"a": np.arange(4), "b": np.arange(4)[::-1]}
    assert np.array_equal(netlist.evaluate_words(operands), pruned.evaluate_words(operands))


def test_copy_preserves_function_and_applies_metadata(multiplier4):
    duplicate = multiplier4.copy(name="other", meta={"tag": 1})
    assert duplicate.name == "other"
    assert duplicate.meta["tag"] == 1
    operands = {"a": np.arange(16), "b": np.arange(16)}
    assert np.array_equal(multiplier4.evaluate_words(operands), duplicate.evaluate_words(operands))


def test_gate_of_node_and_is_input(multiplier4):
    assert multiplier4.is_input_node(0)
    with pytest.raises(NetlistError):
        multiplier4.gate_of_node(0)
    gate = multiplier4.gate_of_node(multiplier4.num_inputs)
    assert isinstance(gate, Gate)


def test_live_gate_count_not_larger_than_total(multiplier8):
    assert 0 < multiplier8.live_gate_count() <= multiplier8.num_gates
