"""Shared fixtures for the test suite.

Small circuit libraries and synthesizers are session-scoped because building
them is the dominant cost of many tests; every test treats them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asic import AsicSynthesizer
from repro.error import ErrorEvaluator
from repro.fpga import FpgaSynthesizer
from repro.generators import (
    array_multiplier,
    build_adder_library,
    build_multiplier_library,
    ripple_carry_adder,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def adder8():
    return ripple_carry_adder(8)


@pytest.fixture(scope="session")
def multiplier4():
    return array_multiplier(4)


@pytest.fixture(scope="session")
def multiplier8():
    return array_multiplier(8)


@pytest.fixture(scope="session")
def small_multiplier_library():
    """A 4x4 multiplier library: fast enough for end-to-end flow tests."""
    return build_multiplier_library(4, size=60, seed=3)


@pytest.fixture(scope="session")
def small_adder_library():
    return build_adder_library(8, size=50, seed=5)


@pytest.fixture(scope="session")
def fpga_synth():
    return FpgaSynthesizer()


@pytest.fixture(scope="session")
def asic_synth():
    return AsicSynthesizer()


@pytest.fixture(scope="session")
def multiplier4_evaluator(small_multiplier_library):
    return ErrorEvaluator(small_multiplier_library.reference())
