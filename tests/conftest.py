"""Shared fixtures for the test suite.

Small circuit libraries and synthesizers are session-scoped because building
them is the dominant cost of many tests; every test treats them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asic import AsicSynthesizer
from repro.error import ErrorEvaluator
from repro.fpga import FpgaSynthesizer
from repro.generators import (
    array_multiplier,
    build_adder_library,
    build_multiplier_library,
    ripple_carry_adder,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def adder8():
    return ripple_carry_adder(8)


@pytest.fixture(scope="session")
def multiplier4():
    return array_multiplier(4)


@pytest.fixture(scope="session")
def multiplier8():
    return array_multiplier(8)


@pytest.fixture(scope="session")
def small_multiplier_library():
    """A 4x4 multiplier library: fast enough for end-to-end flow tests."""
    return build_multiplier_library(4, size=60, seed=3)


@pytest.fixture(scope="session")
def small_adder_library():
    return build_adder_library(8, size=50, seed=5)


@pytest.fixture(scope="session")
def fpga_synth():
    return FpgaSynthesizer()


@pytest.fixture(scope="session")
def asic_synth():
    return AsicSynthesizer()


@pytest.fixture(scope="session")
def multiplier4_evaluator(small_multiplier_library):
    return ErrorEvaluator(small_multiplier_library.reference())


@pytest.fixture(scope="session")
def autoax_searchables():
    """A small accelerator plus fitted estimators for search-level tests.

    Narrow (4-bit multiplier / 8-bit adder) components keep the behavioural
    evaluation fast; the search machinery is width-agnostic.
    """
    from types import SimpleNamespace

    from repro.autoax import (
        GaussianFilterAccelerator,
        HwCostEstimator,
        QorEstimator,
        collect_training_samples,
        components_from_library,
        default_image_set,
    )

    multipliers = components_from_library(
        build_multiplier_library(4, size=20, seed=2), 4, max_error=0.2
    )
    adders = components_from_library(
        build_adder_library(8, size=16, seed=4), 3, max_error=0.1
    )
    accelerator = GaussianFilterAccelerator(multipliers, adders)
    images = default_image_set(24)[:2]
    samples = collect_training_samples(accelerator, images, 12, seed=17)
    return SimpleNamespace(
        accelerator=accelerator,
        images=images,
        qor=QorEstimator().fit(samples),
        hw=HwCostEstimator("area").fit(samples),
    )
