"""Service-layer suite: sharded store, job registry, workers, crash-resume.

Covers the three load-bearing guarantees of :mod:`repro.service`:

* the sharded store is **concurrency-safe**: atomic publication, corrupt
  entries degrade to misses (counted + logged once), and a multi-process
  stress test sees zero corrupt reads, zero lost writes and a 100%
  warm-repeat hit rate;
* the job registry's **lease protocol** hands each job to exactly one
  worker, and expired leases (dead workers) are reclaimed by exactly one
  contender;
* a **killed worker loses no work**: a job reclaimed after its worker died
  mid-stage or mid-generation resumes from the last checkpoint and
  finishes with a payload digest bit-identical to an uninterrupted run.

Run alone with ``pytest -m service``.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import EvalCache
from repro.io import JsonDirectoryStore, ShardedJsonStore
from repro.registry import RegistryError
from repro.service import (
    JOB_FLOWS,
    JobClient,
    JobRegistry,
    JobSpec,
    Worker,
    payload_digest,
)

pytestmark = pytest.mark.service

# Small enough for sub-second end-to-end jobs; shared by every worker test
# so their evaluations collapse in per-test-root caches predictably.
TINY_AUTOAX = {
    "parameters": ["area"],
    "num_training_samples": 6,
    "num_random_baseline": 4,
    "hill_climb_iterations": 30,
    "image_size": 16,
    "multiplier_bits": 4,
    "multiplier_library_size": 16,
    "num_multipliers": 4,
    "adder_bits": 8,
    "adder_library_size": 12,
    "num_adders": 3,
}


# --------------------------------------------------------------------- #
# Sharded store semantics
# --------------------------------------------------------------------- #
class TestShardedJsonStore:
    def test_roundtrip_and_shard_layout(self, tmp_path):
        store = ShardedJsonStore(tmp_path / "s", shards=8)
        for index in range(40):
            store.put(f"key-{index}", {"value": index})
        assert len(store) == 40
        assert store.get("key-7") == {"value": 7}
        assert store.get("missing") is None
        # Entries are spread over hex-named shard subdirectories.
        shard_dirs = [p for p in (tmp_path / "s").iterdir() if p.is_dir()]
        assert 1 < len(shard_dirs) <= 8
        assert all(len(p.name) == 4 for p in shard_dirs)

    def test_flat_layout_is_json_directory_store_compatible(self, tmp_path):
        # JsonDirectoryStore is now a shards=1 wrapper; a directory written
        # by one must be readable by the other (historical warm caches).
        legacy = JsonDirectoryStore(tmp_path / "flat")
        legacy.put("alpha", [1, 2, 3])
        reopened = ShardedJsonStore(tmp_path / "flat", shards=1)
        assert reopened.get("alpha") == [1, 2, 3]
        reopened.put("beta", {"x": 1})
        assert JsonDirectoryStore(tmp_path / "flat").get("beta") == {"x": 1}
        # Flat layout keeps entries directly in the directory.
        assert not any(p.is_dir() for p in (tmp_path / "flat").iterdir())

    def test_shard_count_mismatch_raises(self, tmp_path):
        ShardedJsonStore(tmp_path / "s", shards=4).put("k", 1)
        with pytest.raises(ValueError, match="shard"):
            ShardedJsonStore(tmp_path / "s", shards=8)

    def test_invalid_shard_count_raises(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedJsonStore(tmp_path / "s", shards=0)

    def test_overwrite_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        store = ShardedJsonStore(tmp_path / "s", shards=4)
        for round_number in range(3):
            store.put("key", {"round": round_number})
        assert store.get("key") == {"round": 2}
        assert len(store) == 1
        leftovers = [p for p in (tmp_path / "s").rglob("*.tmp")]
        assert leftovers == []

    def test_corrupt_entry_is_a_counted_miss_logged_once(self, tmp_path, caplog):
        store = ShardedJsonStore(tmp_path / "s", shards=2)
        store.put("first", 1)
        store.put("second", 2)
        for entry in (tmp_path / "s").rglob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.io"):
            assert store.get("first") is None
            assert store.get("second") is None
        assert store.corrupt_count == 2
        # Logged once per store instance, not once per corrupt entry.
        warnings = [r for r in caplog.records if "corrupt" in r.getMessage().lower()]
        assert len(warnings) == 1
        # Healthy writes keep working after corruption.
        store.put("first", 10)
        assert store.get("first") == 10

    def test_keys_clear_contains(self, tmp_path):
        store = ShardedJsonStore(tmp_path / "s", shards=4)
        store.put("a", 1)
        store.put("b", 2)
        assert "a" in store and "zzz" not in store
        assert sorted(store.keys()) == ["a", "b"]
        store.clear()
        assert len(store) == 0


class TestCacheCorruptTelemetry:
    def test_eval_cache_surfaces_corrupt_counter(self, tmp_path):
        store = ShardedJsonStore(tmp_path / "cache", shards=2)
        cache = EvalCache(capacity=4, store=store)
        cache.put("key", {"v": 1})
        for entry in (tmp_path / "cache").rglob("*.json"):
            entry.write_text("garbage", encoding="utf-8")
        cache.clear()  # drop the memory layer, force the disk read
        assert cache.get("key") is None
        stats = cache.stats()
        assert stats.corrupt == 1
        assert stats.misses == 1
        assert stats.as_dict()["corrupt"] == 1
        # The delta view propagates the counter too.
        assert cache.stats().since(stats).corrupt == 0


# --------------------------------------------------------------------- #
# Registry: records, leases, claims
# --------------------------------------------------------------------- #
class TestJobRegistry:
    def test_submit_get_list_cancel(self, tmp_path):
        registry = JobRegistry(tmp_path)
        record = registry.submit(JobSpec(flow="autoax", params={"seed": 1}, tenant="alice"))
        assert record.state == "queued"
        assert registry.get(record.job_id).spec.tenant == "alice"
        registry.submit(JobSpec(flow="autoax", tenant="bob"), job_id="bobs-job")
        assert [r.spec.tenant for r in registry.list_jobs(tenant="alice")] == ["alice"]
        assert len(registry.list_jobs(state="queued")) == 2
        assert registry.cancel("bobs-job") is True
        assert registry.get("bobs-job").state == "cancelled"
        assert registry.cancel("bobs-job") is False  # only queued jobs cancel

    def test_duplicate_and_invalid_job_ids_raise(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.submit(JobSpec(flow="autoax"), job_id="job-1")
        with pytest.raises(ValueError, match="already exists"):
            registry.submit(JobSpec(flow="autoax"), job_id="job-1")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                registry.submit(JobSpec(flow="autoax"), job_id=bad)
        with pytest.raises(KeyError):
            registry.get("never-submitted")

    def test_spec_token_ignores_tenant(self):
        # Content addressing: identical work from different tenants must
        # collapse onto the same cache entries.
        alice = JobSpec(flow="autoax", params={"seed": 3}, tenant="alice")
        bob = JobSpec(flow="autoax", params={"seed": 3}, tenant="bob")
        other = JobSpec(flow="autoax", params={"seed": 4}, tenant="alice")
        assert alice.token() == bob.token()
        assert alice.token() != other.token()

    def test_claim_is_exclusive(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.submit(JobSpec(flow="autoax"), job_id="only")
        first = registry.claim("worker-a")
        assert first is not None and first.state == "running" and first.attempts == 1
        assert registry.claim("worker-b") is None  # lease held, nothing queued

    def test_expired_lease_is_reclaimed_exactly_once(self, tmp_path):
        registry = JobRegistry(tmp_path, lease_ttl=0.05)
        registry.submit(JobSpec(flow="autoax"), job_id="orphan")
        assert registry.claim("worker-a").job_id == "orphan"
        time.sleep(0.1)  # worker-a "dies": no heartbeats, lease expires
        assert registry.lease_expired("orphan")
        reclaimed = registry.claim("worker-b")
        assert reclaimed.job_id == "orphan"
        assert reclaimed.attempts == 2
        assert registry.lease_info("orphan")["worker"] == "worker-b"
        # worker-a's stale credentials are now rejected.
        with pytest.raises(RuntimeError, match="no longer held"):
            registry.heartbeat("orphan", "worker-a")
        registry.heartbeat("orphan", "worker-b")  # owner renews fine

    def test_claim_skips_cancelled_jobs(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.submit(JobSpec(flow="autoax"), job_id="gone")
        registry.cancel("gone")
        assert registry.claim("worker-a") is None
        assert registry.lease_info("gone") is None  # no lease left behind


# --------------------------------------------------------------------- #
# Client + worker end to end
# --------------------------------------------------------------------- #
class TestClientAndWorker:
    def test_submit_rejects_unknown_flow(self, tmp_path):
        with pytest.raises(RegistryError):
            JobClient(tmp_path).submit("no-such-flow", {})

    def test_result_state_errors(self, tmp_path):
        client = JobClient(tmp_path)
        job_id = client.submit("autoax", TINY_AUTOAX)
        with pytest.raises(ValueError, match="queued"):
            client.result(job_id)

    def test_tiny_autoax_job_end_to_end(self, tmp_path):
        client = JobClient(tmp_path, tenant="alice")
        job_id = client.submit("autoax", TINY_AUTOAX)
        record = Worker(tmp_path, engine_mode="serial").run_once()
        assert record.job_id == job_id
        assert record.state == "done"
        assert record.digest == payload_digest(client.result(job_id))
        assert record.worker and record.elapsed_s > 0
        # Per-stage progress reached the record, and per-job cache telemetry
        # is the delta attributable to this job.
        assert record.progress["status"] == "completed"
        assert record.cache["misses"] > 0 and record.cache["corrupt"] == 0
        assert client.status(job_id).state == "done"
        payload = client.result(job_id)
        assert payload["flow"] == "autoax"
        assert payload["scenarios"]["area"]["front"]

    def test_failed_flow_marks_job_failed_and_releases_lease(self, tmp_path):
        if "always-fails" not in JOB_FLOWS:
            @JOB_FLOWS.register("always-fails")
            def _always_fails(session, params, *, run_id, progress=None, on_generation=None):
                raise RuntimeError("intentional test failure")

        client = JobClient(tmp_path)
        job_id = client.submit("always-fails", {})
        record = Worker(tmp_path, engine_mode="serial").run_once()
        assert record.state == "failed"
        assert "intentional test failure" in record.error
        assert client.registry.lease_info(job_id) is None  # released, not leaked
        with pytest.raises(RuntimeError, match="intentional"):
            client.result(job_id)

    def test_wait_timeout_never_overshoots(self, tmp_path):
        # Regression: each sleep used to be a full poll_interval, so a
        # wait(timeout=0.2, poll_interval=10) blocked for 10 seconds.
        client = JobClient(tmp_path)
        job_id = client.submit("autoax", TINY_AUTOAX)  # queued, no worker
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="queued"):
            client.wait(job_id, timeout=0.2, poll_interval=10.0)
        assert time.monotonic() - start < 2.0

    def test_wait_timeout_zero_is_a_single_immediate_check(self, tmp_path):
        client = JobClient(tmp_path)
        job_id = client.submit("autoax", TINY_AUTOAX)
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            client.wait(job_id, timeout=0)
        assert time.monotonic() - start < 0.5
        # A finished job is returned by the same immediate check.
        Worker(tmp_path, engine_mode="serial").run_once()
        assert client.wait(job_id, timeout=0).state == "done"

    def test_wait_rejects_negative_timeout(self, tmp_path):
        client = JobClient(tmp_path)
        job_id = client.submit("autoax", TINY_AUTOAX)
        with pytest.raises(ValueError, match="non-negative"):
            client.wait(job_id, timeout=-1.0)

    def test_worker_rejects_cache_store_overrides(self, tmp_path):
        with pytest.raises(ValueError, match="owned by the registry"):
            Worker(tmp_path, cache=object())

    def test_worker_cli_once(self, tmp_path, capsys):
        from repro.service import worker as worker_module

        JobClient(tmp_path).submit("autoax", TINY_AUTOAX)
        assert worker_module.main(["--root", str(tmp_path), "--once"]) == 0
        assert "-> done" in capsys.readouterr().out
        # Idle queue: --once reports idle and still exits cleanly.
        assert worker_module.main(["--root", str(tmp_path), "--once"]) == 0
        assert "idle" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Crash-resume: a dead worker's job finishes bit-identically
# --------------------------------------------------------------------- #
class KilledAfterStage(Worker):
    """Dies (BaseException, as a real SIGKILL would strand state) right
    after a named pipeline stage completes."""

    def __init__(self, *args, kill_after: str, **kwargs):
        super().__init__(*args, **kwargs)
        self.kill_after = kill_after

    def _heartbeat(self, record):
        super()._heartbeat(record)
        progress = record.progress or {}
        if progress.get("stage") == self.kill_after and progress.get("status") == "completed":
            raise KeyboardInterrupt("simulated worker death")


class KilledMidGeneration(Worker):
    """Dies mid-search, after the NSGA-II generation-checkpoint heartbeat
    has fired ``generations`` times inside the scenario stage."""

    def __init__(self, *args, generations: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.generations = generations
        self.generation_beats = 0

    def _heartbeat(self, record):
        super()._heartbeat(record)
        progress = record.progress or {}
        if progress.get("status") == "started" and progress.get("stage", "").startswith(
            "scenario-"
        ):
            self.generation_beats += 1
            if self.generation_beats >= self.generations:
                raise KeyboardInterrupt("simulated worker death mid-generation")


def _run_reference(tmp_path, params) -> str:
    """Digest of the same job run uninterrupted in a pristine root."""
    registry = JobRegistry(tmp_path / "reference")
    JobClient(registry).submit("autoax", params, job_id="reference")
    record = Worker(registry, engine_mode="serial").run_once()
    assert record.state == "done"
    return record.digest


class TestCrashResume:
    def test_kill_after_stage_then_resume_is_bit_identical(self, tmp_path):
        reference_digest = _run_reference(tmp_path, TINY_AUTOAX)

        registry = JobRegistry(tmp_path / "service", lease_ttl=0.05)
        JobClient(registry).submit("autoax", TINY_AUTOAX, job_id="victim")
        killer = KilledAfterStage(registry, engine_mode="serial", kill_after="collect-samples")
        with pytest.raises(KeyboardInterrupt):
            killer.run_once()

        # The dying worker marked nothing: the job is still running with a
        # lease that will expire, exactly like a SIGKILLed process.
        assert registry.get("victim").state == "running"
        assert registry.lease_info("victim") is not None
        time.sleep(0.1)

        record = Worker(registry, engine_mode="serial").run_once()
        assert record.job_id == "victim"
        assert record.state == "done"
        assert record.attempts == 2
        assert "collect-samples" in record.resumed_stages
        assert record.digest == reference_digest

    def test_kill_mid_generation_then_resume_is_bit_identical(self, tmp_path):
        params = dict(TINY_AUTOAX, search_strategy="nsga2")
        reference_digest = _run_reference(tmp_path, params)

        registry = JobRegistry(tmp_path / "service", lease_ttl=0.05)
        JobClient(registry).submit("autoax", params, job_id="victim")
        killer = KilledMidGeneration(registry, engine_mode="serial", generations=3)
        with pytest.raises(KeyboardInterrupt):
            killer.run_once()
        assert killer.generation_beats == 3
        assert registry.get("victim").state == "running"
        time.sleep(0.1)

        record = Worker(registry, engine_mode="serial").run_once()
        assert record.state == "done"
        assert record.attempts == 2
        # Earlier stages restore from pipeline checkpoints; the interrupted
        # search stage itself resumes from its NSGA-II generation checkpoints.
        assert "collect-samples" in record.resumed_stages
        assert record.digest == reference_digest


# --------------------------------------------------------------------- #
# Multi-process stress: one sharded store, many writers
# --------------------------------------------------------------------- #
def _expected_value(key: str) -> dict:
    """Deterministic key-derived value: any mixup is detectable as a
    corrupt read even when another process wrote the entry."""
    return {"key": key, "payload": [ord(ch) for ch in key]}


def _hammer_store(arguments) -> dict:
    """Worker-process body: interleave writes and reads of overlapping keys."""
    directory, worker_index, keys, rounds = arguments
    store = ShardedJsonStore(directory, shards=8)
    bad_reads = 0
    for round_number in range(rounds):
        for offset, key in enumerate(keys):
            if (offset + round_number + worker_index) % 2 == 0:
                store.put(key, _expected_value(key))
            else:
                value = store.get(key)
                if value is not None and value != _expected_value(key):
                    bad_reads += 1
    return {"bad_reads": bad_reads, "corrupt": store.corrupt_count}


class TestMultiProcessStress:
    def test_concurrent_writers_never_corrupt_or_lose_entries(self, tmp_path):
        directory = str(tmp_path / "shared")
        keys = [f"stress-key-{index:03d}" for index in range(60)]
        workers = 4
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(
                    _hammer_store,
                    [(directory, index, keys, 6) for index in range(workers)],
                )
            )
        # Zero torn or mixed-up reads, zero decode failures, in any process.
        assert sum(o["bad_reads"] for o in outcomes) == 0
        assert sum(o["corrupt"] for o in outcomes) == 0

        # Zero lost writes + 100% warm-repeat hit rate: every key every
        # process fought over is present, intact and a hit afterwards.
        store = ShardedJsonStore(directory, shards=8)
        cache = EvalCache(capacity=len(keys), store=store)
        for key in keys:
            assert cache.get(key) == _expected_value(key)
        stats = cache.stats()
        assert stats.misses == 0 and stats.corrupt == 0
        assert stats.hit_rate == 1.0
        assert len(store) == len(keys)
