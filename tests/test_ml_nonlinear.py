"""Tests of the non-linear models: kernels, GP, PLS, KNN, trees, ensembles, MLP, GP symbolic."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostRegressor,
    DecisionTreeRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KernelRidge,
    KNeighborsRegressor,
    MLPRegressor,
    PLSRegression,
    RandomForestRegressor,
    ScaledRegressor,
    SymbolicRegressor,
    r2_score,
    rbf_kernel,
)


def make_nonlinear_data(n=120, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 2))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 + noise * rng.normal(0, 1, n)
    return X, y


def test_rbf_kernel_properties():
    A = np.random.default_rng(0).normal(size=(10, 3))
    K = rbf_kernel(A, A, gamma=0.5)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert np.all((K >= 0) & (K <= 1 + 1e-12))


def test_kernel_ridge_fits_nonlinear_function():
    X, y = make_nonlinear_data()
    model = ScaledRegressor(KernelRidge(alpha=0.05, kernel="rbf"), scale_target=True).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.9


def test_kernel_ridge_rejects_bad_alpha():
    with pytest.raises(ValueError):
        KernelRidge(alpha=0.0)


def test_gaussian_process_interpolates_training_points():
    X, y = make_nonlinear_data(n=60, noise=0.0)
    model = ScaledRegressor(GaussianProcessRegressor(noise=1e-4), scale_target=True).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.98


def test_gaussian_process_std_positive():
    X, y = make_nonlinear_data(n=40)
    gp = GaussianProcessRegressor(noise=1e-3).fit(X, y)
    mean, std = gp.predict_with_std(X[:5])
    assert mean.shape == (5,)
    assert np.all(std > 0)


def test_pls_regression_matches_linear_structure():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(100, 6))
    y = X[:, 0] * 2 - X[:, 1] + 0.01 * rng.normal(size=100)
    model = PLSRegression(n_components=3).fit(X, y)
    assert model.score(X, y) > 0.98
    assert model.n_components_ <= 3


def test_pls_rejects_bad_components():
    with pytest.raises(ValueError):
        PLSRegression(n_components=0)


def test_knn_exact_on_training_points_with_distance_weights():
    X, y = make_nonlinear_data(n=50, noise=0.0)
    model = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.99


def test_knn_validates_parameters():
    with pytest.raises(ValueError):
        KNeighborsRegressor(n_neighbors=0)
    with pytest.raises(ValueError):
        KNeighborsRegressor(weights="other")


def test_decision_tree_fits_step_function():
    X = np.linspace(0, 1, 100).reshape(-1, 1)
    y = (X[:, 0] > 0.5).astype(float)
    model = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.99
    assert model.depth() <= 3


def test_decision_tree_respects_max_depth():
    X, y = make_nonlinear_data(n=200)
    shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
    assert shallow.depth() <= 2
    assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))


def test_random_forest_beats_constant_baseline():
    X, y = make_nonlinear_data(n=150)
    model = RandomForestRegressor(n_estimators=20, max_depth=6, random_state=1).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.8


def test_random_forest_deterministic_for_seed():
    X, y = make_nonlinear_data(n=80)
    first = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
    second = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
    assert np.allclose(first, second)


def test_gradient_boosting_training_error_decreases_with_stages():
    X, y = make_nonlinear_data(n=150)
    few = GradientBoostingRegressor(n_estimators=5, random_state=2).fit(X, y)
    many = GradientBoostingRegressor(n_estimators=100, random_state=2).fit(X, y)
    assert r2_score(y, many.predict(X)) > r2_score(y, few.predict(X))


def test_adaboost_fits_reasonably():
    X, y = make_nonlinear_data(n=150)
    model = AdaBoostRegressor(n_estimators=25, max_depth=4, random_state=3).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.7
    assert len(model.estimators_) >= 1


def test_mlp_learns_smooth_function():
    X, y = make_nonlinear_data(n=200, noise=0.02)
    model = ScaledRegressor(
        MLPRegressor(hidden_layer_sizes=(32, 16), max_iter=200, random_state=4),
        scale_target=True,
    ).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.85


def test_mlp_rejects_empty_hidden_layers():
    with pytest.raises(ValueError):
        MLPRegressor(hidden_layer_sizes=())


def test_symbolic_regression_recovers_simple_relation():
    rng = np.random.default_rng(9)
    X = rng.uniform(-1, 1, size=(80, 2))
    y = X[:, 0] + X[:, 1]
    model = SymbolicRegressor(population_size=60, generations=15, random_state=1).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.7
    assert isinstance(model.expression_string(["a", "b"]), str)


def test_ensembles_validate_parameters():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=0.0)
