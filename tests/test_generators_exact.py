"""Functional correctness of the exact arithmetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    array_multiplier,
    carry_select_adder,
    exact_reference,
    ripple_carry_adder,
    wallace_multiplier,
)


@pytest.mark.parametrize("width", [2, 3, 4, 8, 12])
def test_ripple_carry_adder_exact(width, rng):
    adder = ripple_carry_adder(width)
    a = rng.integers(0, 1 << width, 200)
    b = rng.integers(0, 1 << width, 200)
    assert np.array_equal(adder.evaluate_words({"a": a, "b": b}), a + b)


@pytest.mark.parametrize("width,block", [(4, 2), (8, 3), (8, 4), (12, 4)])
def test_carry_select_adder_exact(width, block, rng):
    adder = carry_select_adder(width, block=block)
    a = rng.integers(0, 1 << width, 200)
    b = rng.integers(0, 1 << width, 200)
    assert np.array_equal(adder.evaluate_words({"a": a, "b": b}), a + b)


@pytest.mark.parametrize("width", [2, 3, 4, 6, 8])
def test_array_multiplier_exact(width, rng):
    multiplier = array_multiplier(width)
    a = rng.integers(0, 1 << width, 200)
    b = rng.integers(0, 1 << width, 200)
    assert np.array_equal(multiplier.evaluate_words({"a": a, "b": b}), a * b)


@pytest.mark.parametrize("width", [2, 3, 4, 6, 8])
def test_wallace_multiplier_exact(width, rng):
    multiplier = wallace_multiplier(width)
    a = rng.integers(0, 1 << width, 200)
    b = rng.integers(0, 1 << width, 200)
    assert np.array_equal(multiplier.evaluate_words({"a": a, "b": b}), a * b)


def test_multiplier4_exhaustively_exact(multiplier4):
    outputs = multiplier4.exhaustive_outputs()
    a = np.repeat(np.arange(16), 16)
    b = np.tile(np.arange(16), 16)
    assert np.array_equal(outputs, a * b)


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_adder8_single_pairs(a, b):
    adder = ripple_carry_adder(8)
    assert adder.evaluate_words({"a": [a], "b": [b]})[0] == a + b


def test_interface_shapes():
    adder = ripple_carry_adder(8)
    assert adder.num_outputs == 9
    multiplier = array_multiplier(8)
    assert multiplier.num_outputs == 16
    assert set(multiplier.input_words) == {"a", "b"}


def test_exact_reference_dispatch():
    assert exact_reference("adder", 8).kind == "adder"
    assert exact_reference("multiplier", 4).kind == "multiplier"
    with pytest.raises(ValueError):
        exact_reference("divider", 8)


def test_generators_reject_bad_widths():
    with pytest.raises(ValueError):
        ripple_carry_adder(0)
    with pytest.raises(ValueError):
        array_multiplier(1)
    with pytest.raises(ValueError):
        wallace_multiplier(1)


def test_exact_flag_in_metadata():
    assert ripple_carry_adder(8).meta["exact"] is True
    assert array_multiplier(4).meta["exact"] is True
