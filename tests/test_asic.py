"""Tests of the ASIC synthesis substrate."""


from repro.asic import AsicSynthesizer, default_cell_library, synthesize_asic
from repro.circuits import GateType
from repro.generators import (
    array_multiplier,
    truncated_multiplier,
    wallace_multiplier,
)


def test_default_cell_library_covers_all_gate_types():
    library = default_cell_library()
    assert set(library.cells) == set(GateType)
    for gate_type, cell in library.cells.items():
        assert cell.gate_type == gate_type
        assert cell.area_um2 >= 0.0
        assert cell.intrinsic_delay_ns >= 0.0


def test_constants_are_free():
    library = default_cell_library()
    assert library.cell(GateType.CONST0).area_um2 == 0.0
    assert library.cell(GateType.CONST1).switching_energy_fj == 0.0


def test_asic_report_fields_positive(multiplier8):
    report = synthesize_asic(multiplier8)
    assert report.area_um2 > 0.0
    assert report.critical_path_ns > 0.0
    assert report.total_power_mw > 0.0
    assert report.cell_count > 0
    assert report.latency_ns == report.critical_path_ns


def test_asic_report_as_dict_keys(adder8):
    report = synthesize_asic(adder8)
    as_dict = report.as_dict()
    for key in ("asic_area_um2", "asic_latency_ns", "asic_power_mw", "asic_cell_count"):
        assert key in as_dict


def test_multiplier_larger_than_adder(adder8, multiplier8):
    adder_report = synthesize_asic(adder8)
    multiplier_report = synthesize_asic(multiplier8)
    assert multiplier_report.area_um2 > adder_report.area_um2
    assert multiplier_report.critical_path_ns > adder_report.critical_path_ns


def test_truncation_reduces_asic_area():
    exact = synthesize_asic(array_multiplier(8))
    truncated = synthesize_asic(truncated_multiplier(8, 6))
    assert truncated.area_um2 < exact.area_um2
    assert truncated.cell_count < exact.cell_count


def test_wallace_shallower_than_array():
    array_report = synthesize_asic(array_multiplier(8))
    wallace_report = synthesize_asic(wallace_multiplier(8))
    assert wallace_report.critical_path_ns < array_report.critical_path_ns


def test_fixed_clock_period_changes_power(multiplier4):
    free_running = AsicSynthesizer().synthesize(multiplier4)
    slow_clock = AsicSynthesizer(clock_period_ns=100.0).synthesize(multiplier4)
    assert slow_clock.dynamic_power_mw < free_running.dynamic_power_mw


def test_asic_synthesis_is_deterministic(multiplier4):
    first = AsicSynthesizer().synthesize(multiplier4)
    second = AsicSynthesizer().synthesize(multiplier4)
    assert first == second


def test_dead_logic_not_counted():
    from repro.circuits import NetlistBuilder

    builder = NetlistBuilder("dead", kind="adder")
    a = builder.add_input_word("a", 2)
    b = builder.add_input_word("b", 2)
    live = builder.xor(a[0], b[0])
    builder.and_(a[1], b[1])  # dead
    netlist = builder.finish([live])
    report = synthesize_asic(netlist)
    assert report.cell_count == 1
