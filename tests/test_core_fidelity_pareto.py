"""Tests of the fidelity metric, Pareto machinery and exploration accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplorationCost,
    ExplorationSummary,
    dominates,
    fidelity,
    fidelity_strict,
    hypervolume_2d,
    pareto_coverage,
    pareto_front_indices,
    pareto_union,
    seconds_to_days,
    successive_pareto_fronts,
    total_synthesis_time,
)
from repro.generators import array_multiplier, truncated_multiplier


# ----------------------------- fidelity ------------------------------- #
def test_fidelity_perfect_for_identical_ordering():
    measured = np.array([1.0, 2.0, 3.0, 4.0])
    assert fidelity(measured, measured * 10 + 5) == 1.0


def test_fidelity_low_for_reversed_ordering():
    measured = np.array([1.0, 2.0, 3.0, 4.0])
    estimated = measured[::-1]
    # Only the diagonal matches.
    assert fidelity(measured, estimated) == pytest.approx(4 / 16)


def test_fidelity_counts_partial_order_preservation():
    measured = np.array([1.0, 2.0, 3.0])
    estimated = np.array([1.0, 3.0, 2.0])  # swaps the last two
    # Pairs: 9 total; mismatches are (2,3) and (3,2).
    assert fidelity(measured, estimated) == pytest.approx(7 / 9)


def test_fidelity_with_tolerance_treats_close_values_as_equal():
    measured = np.array([1.0, 1.0, 2.0])
    estimated = np.array([1.0, 1.001, 2.0])
    assert fidelity(measured, estimated) < 1.0
    assert fidelity(measured, estimated, tolerance=0.01) == 1.0


def test_fidelity_strict_excludes_diagonal():
    measured = np.array([1.0, 2.0])
    estimated = np.array([2.0, 1.0])
    assert fidelity_strict(measured, estimated) == 0.0
    assert fidelity(measured, estimated) == pytest.approx(0.5)


def test_fidelity_input_validation():
    with pytest.raises(ValueError):
        fidelity(np.array([1.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        fidelity(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        fidelity_strict(np.array([1.0]), np.array([1.0]))


@settings(max_examples=40)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=25))
def test_fidelity_bounds_and_self_consistency(values):
    measured = np.array(values)
    estimated = measured.copy()
    assert fidelity(measured, estimated) == 1.0
    noisy = measured + 0.1
    score = fidelity(measured, noisy)
    assert 0.0 < score <= 1.0


# ----------------------------- pareto --------------------------------- #
def test_pareto_front_simple_case():
    points = np.array([[1.0, 5.0], [2.0, 3.0], [3.0, 4.0], [4.0, 1.0], [5.0, 5.0]])
    front = pareto_front_indices(points)
    assert front == [0, 1, 3]


def test_pareto_front_keeps_duplicates():
    points = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
    assert pareto_front_indices(points) == [0, 1]


def test_dominates_definition():
    assert dominates([1.0, 1.0], [2.0, 2.0])
    assert dominates([1.0, 2.0], [1.0, 3.0])
    assert not dominates([1.0, 2.0], [1.0, 2.0])
    assert not dominates([1.0, 3.0], [2.0, 2.0])


def test_successive_fronts_partition_and_order():
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 1, size=(60, 2))
    fronts = successive_pareto_fronts(points, 3)
    assert 1 <= len(fronts) <= 3
    flattened = [i for front in fronts for i in front]
    assert len(flattened) == len(set(flattened))
    # No point in front k may dominate a point in front k-1.
    for earlier, later in zip(fronts, fronts[1:]):
        for j in later:
            assert not any(dominates(points[j], points[i]) for i in earlier)


def test_successive_fronts_exhaust_small_sets():
    points = np.array([[1.0, 1.0], [2.0, 2.0]])
    fronts = successive_pareto_fronts(points, 5)
    assert fronts == [[0], [1]]
    with pytest.raises(ValueError):
        successive_pareto_fronts(points, 0)


def test_pareto_union_and_coverage():
    assert pareto_union([[1, 2], [2, 3], [5]]) == [1, 2, 3, 5]
    assert pareto_coverage([1, 2, 3, 4], [2, 4, 9]) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        pareto_coverage([], [1])


def test_hypervolume_known_value():
    points = np.array([[1.0, 2.0], [2.0, 1.0]])
    reference = [3.0, 3.0]
    # Union of [1,3]x[2,3] and [2,3]x[1,3] = 2 + 1 = 3.
    assert hypervolume_2d(points, reference) == pytest.approx(3.0)


def test_hypervolume_monotone_under_improvement():
    worse = np.array([[2.0, 2.0]])
    better = np.array([[1.0, 1.0]])
    reference = [3.0, 3.0]
    assert hypervolume_2d(better, reference) > hypervolume_2d(worse, reference)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 10.0), st.floats(0.0, 10.0)), min_size=1, max_size=40
    )
)
def test_pareto_front_members_are_mutually_nondominated(raw_points):
    points = np.array(raw_points)
    front = pareto_front_indices(points)
    assert front, "a non-empty point set always has a non-dominated point"
    for i in front:
        for j in front:
            assert not dominates(points[j], points[i]) or np.allclose(points[i], points[j])


# --------------------------- exploration ------------------------------ #
def test_exploration_cost_accounting():
    cost = ExplorationCost(
        library_name="demo",
        num_circuits=100,
        exhaustive_time_s=1000.0,
        training_time_s=80.0,
        resynthesis_time_s=15.0,
        model_time_s=5.0,
    )
    assert cost.approxfpgas_time_s == pytest.approx(100.0)
    assert cost.speedup == pytest.approx(10.0)
    assert cost.as_dict()["speedup"] == pytest.approx(10.0)


def test_exploration_summary_cumulative_rows():
    summary = ExplorationSummary()
    for index in range(3):
        summary.add(
            ExplorationCost(
                library_name=f"lib{index}",
                num_circuits=10,
                exhaustive_time_s=100.0,
                training_time_s=10.0,
                resynthesis_time_s=0.0,
                model_time_s=0.0,
            )
        )
    rows = summary.cumulative_rows()
    assert rows[-1]["cumulative_exhaustive_s"] == pytest.approx(300.0)
    assert rows[-1]["cumulative_approxfpgas_s"] == pytest.approx(30.0)
    assert summary.overall_speedup == pytest.approx(10.0)


def test_total_synthesis_time_and_units():
    circuits = [array_multiplier(4), truncated_multiplier(4, 2)]
    total = total_synthesis_time(circuits)
    assert total > 0.0
    assert seconds_to_days(86400.0) == pytest.approx(1.0)
