"""Property tests for the incremental :class:`repro.error.ErrorAccumulator`.

The contract under test: folding a stream of output blocks through the
accumulator -- over *any* block-size partition -- yields the same metrics as
the one-shot :func:`compute_error_metrics` on the concatenated vectors.  The
count-based metrics are exact by construction (arbitrary-precision integer
sums); ``mse`` is exact while its float64 partial sums stay
integer-representable (always true for this project's operand widths) and
``mre`` matches to within last-ulp accumulation order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.error import ErrorAccumulator, compute_error_metrics

EXACT_FIELDS = ("med", "mae", "wce", "wce_relative", "error_probability", "mse")


def assert_matches_one_shot(accumulated, one_shot):
    for field in EXACT_FIELDS:
        assert getattr(accumulated, field) == getattr(one_shot, field), field
    assert accumulated.mre == pytest.approx(one_shot.mre, rel=1e-12)


paired_vectors = st.integers(min_value=1, max_value=120).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=0, max_value=2**20), min_size=n, max_size=n),
        st.lists(st.integers(min_value=0, max_value=2**20), min_size=n, max_size=n),
    )
)


@settings(max_examples=100)
@given(vectors=paired_vectors, data=st.data())
def test_any_partition_matches_one_shot(vectors, data):
    exact = np.array(vectors[0], dtype=np.int64)
    approx = np.array(vectors[1], dtype=np.int64)
    max_output = 2**20
    one_shot = compute_error_metrics(exact, approx, max_output)

    # Draw an arbitrary ordered partition of [0, n) into contiguous blocks.
    n = len(exact)
    cuts = data.draw(
        st.lists(st.integers(min_value=0, max_value=n), max_size=8).map(sorted),
        label="cuts",
    )
    bounds = [0] + cuts + [n]
    accumulator = ErrorAccumulator(max_output)
    for start, stop in zip(bounds, bounds[1:]):
        accumulator.update(exact[start:stop], approx[start:stop])  # empty blocks are no-ops
    assert accumulator.count == n
    assert_matches_one_shot(accumulator.result(), one_shot)


@settings(max_examples=50)
@given(vectors=paired_vectors)
def test_single_block_is_bit_identical(vectors):
    """A one-block stream reproduces compute_error_metrics exactly, mre included."""
    exact = np.array(vectors[0], dtype=np.int64)
    approx = np.array(vectors[1], dtype=np.int64)
    accumulator = ErrorAccumulator(2**20).update(exact, approx)
    assert accumulator.result() == compute_error_metrics(exact, approx, 2**20)


@settings(max_examples=50)
@given(vectors=paired_vectors, split=st.integers(min_value=0, max_value=120))
def test_merge_matches_sequential_update(vectors, split):
    exact = np.array(vectors[0], dtype=np.int64)
    approx = np.array(vectors[1], dtype=np.int64)
    split = min(split, len(exact))

    sequential = ErrorAccumulator(2**20).update(exact, approx)
    left = ErrorAccumulator(2**20).update(exact[:split], approx[:split])
    right = ErrorAccumulator(2**20).update(exact[split:], approx[split:])
    merged = left.merge(right)
    assert merged.count == sequential.count
    assert_matches_one_shot(merged.result(), sequential.result())


def test_fixed_point_example_every_partition():
    """Every contiguous 2-block partition of a small vector is exact."""
    exact = np.array([0, 10, 20, 30, 40, 55, 3, 9])
    approx = np.array([0, 12, 20, 26, 45, 55, 0, 9])
    one_shot = compute_error_metrics(exact, approx, max_output=100)
    for split in range(len(exact) + 1):
        accumulator = ErrorAccumulator(100)
        accumulator.update(exact[:split], approx[:split])
        accumulator.update(exact[split:], approx[split:])
        assert_matches_one_shot(accumulator.result(), one_shot)


def test_empty_accumulator_raises():
    with pytest.raises(ValueError):
        ErrorAccumulator(100).result()


def test_invalid_max_output():
    with pytest.raises(ValueError):
        ErrorAccumulator(0)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        ErrorAccumulator(100).update(np.arange(3), np.arange(4))


def test_float_outputs_rejected():
    """Same contract as words_to_bits: floats would truncate silently."""
    with pytest.raises(TypeError):
        ErrorAccumulator(100).update(np.array([3.0, 4.7]), np.array([3, 4]))
    with pytest.raises(TypeError):
        compute_error_metrics(np.array([3, 4]), np.array([3.0, 4.7]), 100)


def test_merge_rejects_mismatched_max_output():
    with pytest.raises(ValueError):
        ErrorAccumulator(100).merge(ErrorAccumulator(200))


def test_count_property():
    accumulator = ErrorAccumulator(100)
    assert accumulator.count == 0
    accumulator.update(np.arange(5), np.arange(5))
    accumulator.update(np.arange(3), np.arange(3))
    assert accumulator.count == 8
