"""Differential tests of the simulation backends (``-m sim_backends``).

The ``"bool"``, ``"bitplane"`` and ``"compiled"`` backends must be
*bit-identical* on every netlist and every pattern count -- caches and flows
rely on it (backend keys are deliberately absent from engine cache keys).
This suite checks the contract several ways:

* unit parity of every packed gate kernel against its boolean truth table;
* a seeded differential sweep over hundreds of randomly perturbed netlists
  and pattern counts (including non-multiples of 64 and floating
  ``gate.a/b == -1`` operands);
* hypothesis-driven random netlist/pattern generation on top;
* degenerate-netlist edge cases (wire-only, constant-only, repeated output
  bits, width-1 words) that every backend -- and both executors of the
  compiled backend (native and NumPy fallback) -- must agree on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    AUTO_BACKEND_MIN_PATTERNS,
    AUTO_COMPILED_MIN_PATTERNS,
    PLANE_WIDTH,
    SIM_BACKENDS,
    Gate,
    GateType,
    Netlist,
    compile_netlist,
    evaluate_gate,
    evaluate_gate_packed,
    exhaustive_operands,
    num_planes,
    pack_bits,
    resolve_sim_backend,
    simulate_bits,
    simulate_bits_compiled,
    simulate_bits_packed,
    simulate_planes,
    simulate_words,
    unpack_bits,
    validate_sim_backend,
)
from repro.circuits import compiled as compiled_module
from repro.engine import BatchEvaluator, EvalCache
from repro.error import ErrorEvaluator
from repro.generators import array_multiplier, perturb_netlist, ripple_carry_adder
from repro.generators.perturbation import PerturbationConfig
from repro.registry import RegistryError

pytestmark = pytest.mark.sim_backends


def random_input_bits(netlist: Netlist, patterns: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((patterns, netlist.num_inputs)) < 0.5


def assert_backends_agree(netlist: Netlist, input_bits: np.ndarray) -> None:
    reference = simulate_bits(netlist, input_bits)
    for simulate in (simulate_bits_packed, simulate_bits_compiled):
        outputs = simulate(netlist, input_bits)
        assert outputs.dtype == reference.dtype
        assert outputs.shape == reference.shape
        assert np.array_equal(reference, outputs)


# --------------------------------------------------------------------- #
# Registry and selection
# --------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_builtin_keys(self):
        assert list(SIM_BACKENDS) == ["bool", "bitplane", "compiled"]
        assert SIM_BACKENDS.get("bool") is simulate_bits
        assert SIM_BACKENDS.get("bitplane") is simulate_bits_packed
        assert SIM_BACKENDS.get("compiled") is simulate_bits_compiled

    def test_unknown_key_lists_available(self):
        with pytest.raises(RegistryError, match="bitplane"):
            resolve_sim_backend("cuda")

    def test_default_is_bool(self):
        assert resolve_sim_backend() is simulate_bits
        assert resolve_sim_backend(None, patterns=10**9) is simulate_bits

    def test_auto_selects_by_pattern_count(self):
        assert resolve_sim_backend("auto", patterns=AUTO_BACKEND_MIN_PATTERNS - 1) is simulate_bits
        assert (
            resolve_sim_backend("auto", patterns=AUTO_BACKEND_MIN_PATTERNS)
            is simulate_bits_packed
        )
        assert (
            resolve_sim_backend("auto", patterns=AUTO_COMPILED_MIN_PATTERNS - 1)
            is simulate_bits_packed
        )
        assert (
            resolve_sim_backend("auto", patterns=AUTO_COMPILED_MIN_PATTERNS)
            is simulate_bits_compiled
        )

    def test_auto_without_patterns_raises(self):
        """``"auto"`` used to fall back silently to the slowest backend."""
        with pytest.raises(ValueError, match="patterns"):
            resolve_sim_backend("auto")
        with pytest.raises(ValueError, match="patterns"):
            resolve_sim_backend("auto", patterns=None)

    def test_validate_accepts_selectors_without_selecting(self):
        assert validate_sim_backend("auto") == "auto"
        assert validate_sim_backend(None) is None
        for key in SIM_BACKENDS:
            assert validate_sim_backend(key) == key
        with pytest.raises(RegistryError):
            validate_sim_backend("cuda")

    def test_callable_passes_through(self):
        def custom(netlist, bits):  # pragma: no cover - identity placeholder
            return simulate_bits(netlist, bits)

        assert resolve_sim_backend(custom) is custom
        assert validate_sim_backend(custom) is custom

    def test_unknown_backend_fails_fast_in_evaluator(self, multiplier4):
        with pytest.raises(RegistryError):
            ErrorEvaluator(multiplier4, sim_backend="nope")
        with pytest.raises(RegistryError):
            BatchEvaluator(multiplier4, sim_backend="nope")

    def test_auto_evaluators_construct_without_pattern_count(self, multiplier4):
        """Validation stays distinct from selection: ``"auto"`` holds until
        the evaluator knows its pattern count."""
        assert ErrorEvaluator(multiplier4, sim_backend="auto").sim_backend == "auto"
        assert BatchEvaluator(multiplier4, sim_backend="auto").sim_backend == "auto"


# --------------------------------------------------------------------- #
# pack / unpack
# --------------------------------------------------------------------- #
class TestPacking:
    @settings(max_examples=60)
    @given(
        patterns=st.integers(min_value=0, max_value=300),
        rows=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip(self, patterns, rows, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random((rows, patterns)) < 0.5
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (rows, num_planes(patterns))
        assert np.array_equal(unpack_bits(packed, patterns), bits)

    def test_one_dimensional_roundtrip(self):
        bits = np.array([True, False, True] * 43)  # 129 = 2*64 + 1 patterns
        packed = pack_bits(bits)
        assert packed.shape == (num_planes(129),)
        assert np.array_equal(unpack_bits(packed, 129), bits)

    def test_num_planes(self):
        assert [num_planes(p) for p in (0, 1, 63, 64, 65, 128)] == [0, 1, 1, 1, 2, 2]
        with pytest.raises(ValueError):
            num_planes(-1)

    def test_unpack_rejects_overlong_pattern_count(self):
        packed = pack_bits(np.ones(64, dtype=bool))
        with pytest.raises(ValueError):
            unpack_bits(packed, 65)


# --------------------------------------------------------------------- #
# Per-gate kernel parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("gate_type", list(GateType))
def test_packed_gate_matches_bool_gate(gate_type, rng):
    patterns = 200  # deliberately not a multiple of PLANE_WIDTH
    a_bits = rng.random(patterns) < 0.5
    b_bits = rng.random(patterns) < 0.5
    expected = evaluate_gate(gate_type, a_bits, b_bits)
    packed = evaluate_gate_packed(gate_type, pack_bits(a_bits), pack_bits(b_bits))
    assert np.array_equal(unpack_bits(packed, patterns), expected)


@pytest.mark.parametrize("gate_type", list(GateType))
def test_inplace_simulation_kernel_matches_bool_gate(gate_type, rng):
    """Pin the simulator's in-place kernels (not just PACKED_GATE_FUNCTIONS).

    ``simulate_planes`` dispatches to its own allocation-free kernel table;
    a one-gate netlist per gate type proves each kernel agrees with the
    boolean truth-table source in ``gates.py``, so the two packed tables
    cannot drift apart unnoticed.
    """
    netlist = Netlist(
        name=f"single_{gate_type.name.lower()}",
        kind="test",
        input_words={"a": (0,), "b": (1,)},
        output_bits=(2,),
        gates=[
            Gate(gate_type)
            if gate_type in (GateType.CONST0, GateType.CONST1)
            else (Gate(gate_type, 0) if gate_type in (GateType.BUF, GateType.NOT)
                  else Gate(gate_type, 0, 1))
        ],
    )
    for patterns in (1, 65, 200):
        assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))


# --------------------------------------------------------------------- #
# Differential sweep: perturbed netlists x pattern counts
# --------------------------------------------------------------------- #
def test_differential_seeded_sweep():
    """>= 200 random netlist/pattern cases, bit-identical across backends."""
    rng = np.random.default_rng(0xB17)
    bases = [
        ripple_carry_adder(3),
        ripple_carry_adder(5),
        array_multiplier(3),
        array_multiplier(4),
    ]
    pattern_counts = [1, 63, 64, 65, PLANE_WIDTH * 2, 197]
    cases = 0
    for base in bases:
        for seed in range(9):
            config = PerturbationConfig(num_mutations=1 + seed, locality=16)
            netlist = perturb_netlist(base, seed=seed, config=config)
            for patterns in pattern_counts:
                assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))
                cases += 1
    assert cases >= 200


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=4),
    kind=st.sampled_from(["adder", "multiplier"]),
    mutations=st.integers(min_value=0, max_value=10),
    perturb_seed=st.integers(min_value=0, max_value=2**31 - 1),
    patterns=st.integers(min_value=1, max_value=180),
    pattern_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_differential_hypothesis(width, kind, mutations, perturb_seed, patterns, pattern_seed):
    base = ripple_carry_adder(width) if kind == "adder" else array_multiplier(width)
    if mutations:
        config = PerturbationConfig(num_mutations=mutations, locality=24)
        netlist = perturb_netlist(base, seed=perturb_seed, config=config)
    else:
        netlist = base
    rng = np.random.default_rng(pattern_seed)
    assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))


def test_floating_operands_read_as_zero():
    """Gates with ``a``/``b`` == -1 see constant-0 inputs in both backends."""
    netlist = Netlist(
        name="floating",
        kind="test",
        input_words={"a": (0, 1)},
        # node ids: inputs 0-1, gates 2-6
        output_bits=(2, 3, 4, 5, 6),
        gates=[
            Gate(GateType.NOT, 0),         # regular unary (b floats by design)
            Gate(GateType.CONST1),         # both operands float
            Gate(GateType.AND, 0, -1),     # binary gate with floating b
            Gate(GateType.ORNOT, -1, 1),   # binary gate with floating a
            Gate(GateType.BUF, -1),        # unary gate with floating a
        ],
    )
    rng = np.random.default_rng(7)
    for patterns in (1, 64, 65, 130):
        bits = random_input_bits(netlist, patterns, rng)
        assert_backends_agree(netlist, bits)
        outputs = simulate_bits_packed(netlist, bits)
        assert not outputs[:, 2].any()                                       # a AND 0 == 0
        assert np.array_equal(outputs[:, 3], np.logical_not(bits[:, 1]))     # 0 OR NOT b
        assert not outputs[:, 4].any()                                       # BUF of floating == 0


def test_simulate_planes_shape_validation(multiplier4):
    with pytest.raises(ValueError):
        simulate_planes(multiplier4, np.zeros((3, 2), dtype=np.uint64))
    with pytest.raises(ValueError):
        simulate_bits_packed(multiplier4, np.zeros((4, 3), dtype=bool))


# --------------------------------------------------------------------- #
# Word-level and evaluator-level equivalence
# --------------------------------------------------------------------- #
def test_simulate_words_backends_agree(multiplier4, rng):
    operands = {
        "a": rng.integers(0, 16, size=321),
        "b": rng.integers(0, 16, size=321),
    }
    reference = simulate_words(multiplier4, operands, backend="bool")
    assert np.array_equal(simulate_words(multiplier4, operands, backend="bitplane"), reference)
    assert np.array_equal(simulate_words(multiplier4, operands, backend="compiled"), reference)
    assert np.array_equal(simulate_words(multiplier4, operands, backend="auto"), reference)
    assert np.array_equal(simulate_words(multiplier4, operands), reference)


def test_error_evaluator_backends_bit_identical(multiplier4):
    circuit = perturb_netlist(multiplier4, seed=11)
    reports = {
        backend: ErrorEvaluator(multiplier4, sim_backend=backend).evaluate(circuit)
        for backend in ("bool", "bitplane", "compiled", "auto")
    }
    assert reports["bool"].metrics == reports["bitplane"].metrics
    assert reports["bool"].metrics == reports["compiled"].metrics
    assert reports["bool"].metrics == reports["auto"].metrics


def test_error_evaluator_monte_carlo_backends_bit_identical():
    reference = ripple_carry_adder(16)
    circuit = perturb_netlist(reference, seed=5)
    bool_report = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=2048, sim_backend="bool"
    ).evaluate(circuit)
    packed_report = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=2048, sim_backend="bitplane"
    ).evaluate(circuit)
    assert bool_report.method == "monte_carlo"
    assert bool_report.metrics == packed_report.metrics


def test_streaming_evaluator_matches_one_shot(multiplier4):
    circuit = perturb_netlist(multiplier4, seed=13)
    one_shot = ErrorEvaluator(multiplier4, sim_backend="bool").evaluate(circuit)
    for chunk in (1, 37, 64, 100, 256, 10**6):
        chunked = ErrorEvaluator(
            multiplier4, sim_backend="bitplane", chunk_patterns=chunk
        ).evaluate(circuit)
        exact_fields = ("med", "mae", "wce", "wce_relative", "error_probability", "mse")
        for field in exact_fields:
            assert getattr(chunked.metrics, field) == getattr(one_shot.metrics, field), field
        assert chunked.metrics.mre == pytest.approx(one_shot.metrics.mre, rel=1e-12)


def test_streaming_evaluator_rejects_bad_chunk(multiplier4):
    with pytest.raises(ValueError):
        ErrorEvaluator(multiplier4, chunk_patterns=0)


# --------------------------------------------------------------------- #
# Engine integration: backend changes neither results nor cache keys
# --------------------------------------------------------------------- #
def test_engine_results_and_cache_shared_across_backends(multiplier4):
    circuits = [perturb_netlist(multiplier4, seed=s) for s in range(6)]
    cache = EvalCache()
    bool_engine = BatchEvaluator(multiplier4, cache=cache, mode="serial", sim_backend="bool")
    bool_reports = bool_engine.evaluate_errors(circuits)

    packed_engine = BatchEvaluator(
        multiplier4, cache=cache, mode="serial", sim_backend="bitplane"
    )
    before = cache.stats()
    packed_reports = packed_engine.evaluate_errors(circuits)
    after = cache.stats()

    # Identical cache keys: the packed engine is served entirely from the
    # bool engine's entries without re-simulating anything.
    assert after.hits - before.hits == len(circuits)
    assert after.misses == before.misses
    for bool_report, packed_report in zip(bool_reports, packed_reports):
        assert bool_report.metrics == packed_report.metrics

    # And uncached packed / compiled engines recompute the exact same
    # metrics (the compiled engine exercises the plane-level fast path).
    for backend in ("bitplane", "compiled"):
        fresh = BatchEvaluator(
            multiplier4, cache=EvalCache(), mode="serial", sim_backend=backend
        ).evaluate_errors(circuits)
        for bool_report, fresh_report in zip(bool_reports, fresh):
            assert bool_report.metrics == fresh_report.metrics


def test_engine_inherits_backend_from_evaluator(multiplier4):
    evaluator = ErrorEvaluator(multiplier4, sim_backend="bitplane")
    engine = BatchEvaluator(error_evaluator=evaluator)
    assert engine.sim_backend == "bitplane"


def test_degenerate_chunk_shares_cache_with_one_shot(multiplier4):
    """chunk_patterns >= num_patterns is one-shot: same results, same cache keys."""
    circuit = perturb_netlist(multiplier4, seed=17)
    cache = EvalCache()
    one_shot = BatchEvaluator(multiplier4, cache=cache, mode="serial")
    [report] = one_shot.evaluate_errors([circuit])

    big_chunk = ErrorEvaluator(multiplier4, chunk_patterns=10**9)
    assert not big_chunk.streaming
    degenerate = BatchEvaluator(error_evaluator=big_chunk, cache=cache, mode="serial")
    before = cache.stats()
    [served] = degenerate.evaluate_errors([circuit])
    after = cache.stats()
    assert after.hits - before.hits == 1
    assert after.misses == before.misses
    assert served.metrics == report.metrics

    # A genuinely streaming evaluator keys its own cache namespace.
    streaming = ErrorEvaluator(multiplier4, chunk_patterns=64)
    assert streaming.streaming
    streaming_engine = BatchEvaluator(error_evaluator=streaming, cache=cache, mode="serial")
    before = cache.stats()
    [streamed] = streaming_engine.evaluate_errors([circuit])
    after = cache.stats()
    assert after.misses == before.misses + 1
    assert streamed.metrics.med == report.metrics.med


# --------------------------------------------------------------------- #
# Degenerate-netlist edge cases, differential across all backends
# --------------------------------------------------------------------- #
class TestDegenerateNetlists:
    """Every backend must agree on the shapes simulation rarely sees."""

    def test_wire_only_netlist(self, rng):
        """Zero gates: outputs wired straight to (repeated) input bits."""
        netlist = Netlist(
            name="wires",
            kind="test",
            input_words={"a": (0, 1), "b": (2,)},
            output_bits=(1, 0, 2, 1),  # permuted and repeated input nodes
            gates=[],
        )
        for patterns in (1, 64, 65, 200):
            bits = random_input_bits(netlist, patterns, rng)
            assert_backends_agree(netlist, bits)
            outputs = simulate_bits_compiled(netlist, bits)
            assert np.array_equal(outputs, bits[:, [1, 0, 2, 1]])

    def test_constant_only_gates(self, rng):
        netlist = Netlist(
            name="consts",
            kind="test",
            input_words={"a": (0,)},
            output_bits=(1, 2, 1),  # repeated constant outputs too
            gates=[Gate(GateType.CONST0), Gate(GateType.CONST1)],
        )
        for patterns in (1, 63, 130):
            bits = random_input_bits(netlist, patterns, rng)
            assert_backends_agree(netlist, bits)
            outputs = simulate_bits_compiled(netlist, bits)
            assert not outputs[:, 0].any()
            assert outputs[:, 1].all()
            assert not outputs[:, 2].any()

    def test_repeated_gate_output_bits(self, rng):
        netlist = Netlist(
            name="repeated",
            kind="test",
            input_words={"a": (0,), "b": (1,)},
            output_bits=(2, 2, 3, 2),
            gates=[Gate(GateType.XOR, 0, 1), Gate(GateType.NAND, 0, 1)],
        )
        for patterns in (1, 65, 200):
            bits = random_input_bits(netlist, patterns, rng)
            assert_backends_agree(netlist, bits)
            outputs = simulate_bits_compiled(netlist, bits)
            assert np.array_equal(outputs[:, 0], outputs[:, 1])
            assert np.array_equal(outputs[:, 0], outputs[:, 3])

    def test_width_one_words(self, rng):
        netlist = Netlist(
            name="bit_and",
            kind="test",
            input_words={"a": (0,), "b": (1,)},
            output_bits=(2,),
            gates=[Gate(GateType.AND, 0, 1)],
        )
        for patterns in (1, 64, 129):
            assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))
        words = simulate_words(netlist, {"a": [0, 1, 0, 1], "b": [0, 0, 1, 1]})
        assert words.tolist() == [0, 0, 0, 1]

    def test_exhaustive_operands_single_input_word(self):
        netlist = Netlist(
            name="parity3",
            kind="test",
            input_words={"a": (0, 1, 2)},
            output_bits=(4,),
            gates=[Gate(GateType.XOR, 0, 1), Gate(GateType.XOR, 3, 2)],
        )
        operands = exhaustive_operands(netlist)
        assert list(operands) == ["a"]
        assert np.array_equal(operands["a"], np.arange(8))
        expected = [bin(value).count("1") % 2 for value in range(8)]
        for backend in SIM_BACKENDS:
            words = simulate_words(netlist, operands, backend=backend)
            assert words.tolist() == expected


# --------------------------------------------------------------------- #
# Compiled-program unit tests (lowering, caching, pickling, fallback)
# --------------------------------------------------------------------- #
class TestCompiledProgram:
    def test_dead_node_elimination_and_folding(self):
        netlist = Netlist(
            name="foldable",
            kind="test",
            input_words={"a": (0,), "b": (1,)},
            # node ids: inputs 0-1; gates 2-7
            output_bits=(7,),
            gates=[
                Gate(GateType.AND, 0, 1),      # 2: dead (not in any output cone)
                Gate(GateType.CONST1),         # 3: folds to the constant slot
                Gate(GateType.AND, 0, 3),      # 4: AND with 1 -> alias of input 0
                Gate(GateType.NOT, 4),         # 5: free polarity flip
                Gate(GateType.XOR, 5, 5),      # 6: same-operand XOR -> constant 0
                Gate(GateType.OR, 6, 1),       # 7: OR with 0 -> alias of input 1
            ],
        )
        program = compile_netlist(netlist, use_cache=False)
        assert program.source_gates == 6
        assert program.live_gates == 5  # gate 2 eliminated
        assert program.num_ops == 0  # everything folded or aliased
        bits = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=bool)
        assert np.array_equal(program.simulate_bits(bits), bits[:, [1]])

    def test_inverting_gates_become_polarity_flags(self, multiplier4):
        """NAND/NOR/XNOR/NOT lower to non-inverting tape opcodes."""
        perturbed = perturb_netlist(multiplier4, seed=3)
        for netlist in (multiplier4, perturbed):
            program = compile_netlist(netlist, use_cache=False)
            assert program.num_ops <= program.live_gates
            assert program.tape.shape == (program.num_ops, 4)
            opcodes = set(program.tape[:, 0].tolist())
            assert opcodes <= {
                compiled_module.OP_AND,
                compiled_module.OP_OR,
                compiled_module.OP_XOR,
                compiled_module.OP_ANDNOT,
                compiled_module.OP_ORNOT,
            }

    def test_program_cache_identity_and_eviction(self, multiplier4):
        compiled_module.clear_program_cache()
        first = compile_netlist(multiplier4)
        assert compile_netlist(multiplier4) is first
        # A structurally identical rebuild shares the fingerprint entry; a
        # perturbed variant gets its own.
        assert compile_netlist(array_multiplier(4)) is first
        assert compile_netlist(perturb_netlist(multiplier4, seed=9)) is not first
        assert compile_netlist(multiplier4) is first
        assert compile_netlist(multiplier4, use_cache=False) is not first
        compiled_module.clear_program_cache()
        assert compile_netlist(multiplier4) is not first

    def test_program_pickles_cleanly(self, multiplier4, rng):
        """Process pools may ship programs; results must survive the trip."""
        program = compile_netlist(multiplier4, use_cache=False)
        restored = pickle.loads(pickle.dumps(program))
        bits = random_input_bits(multiplier4, 197, rng)
        assert np.array_equal(restored.simulate_bits(bits), simulate_bits(multiplier4, bits))
        assert restored.fingerprint == program.fingerprint

    def test_numpy_fallback_matches_native(self, multiplier4, rng, monkeypatch):
        """The pure-NumPy executor is pinned against the bool backend even
        when the native tape interpreter is available and in use."""
        monkeypatch.setattr(compiled_module, "run_tape_native", lambda *args: False)
        for seed in range(4):
            netlist = perturb_netlist(multiplier4, seed=seed)
            for patterns in (1, 64, 197):
                bits = random_input_bits(netlist, patterns, rng)
                assert np.array_equal(
                    simulate_bits_compiled(netlist, bits), simulate_bits(netlist, bits)
                )

    def test_planes_entry_point_matches_bitplane(self, multiplier4, rng):
        from repro.circuits import simulate_planes_compiled

        bits = random_input_bits(multiplier4, 320, rng)
        planes = pack_bits(bits.T)
        expected = simulate_planes(multiplier4, planes)
        got = simulate_planes_compiled(multiplier4, planes)
        assert got.dtype == np.uint64
        assert np.array_equal(
            unpack_bits(got, 320), unpack_bits(expected, 320)
        )
