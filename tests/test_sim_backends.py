"""Differential tests of the simulation backends (``-m sim_backends``).

The ``"bool"`` and ``"bitplane"`` backends must be *bit-identical* on every
netlist and every pattern count -- caches and flows rely on it (backend keys
are deliberately absent from engine cache keys).  This suite checks the
contract three ways:

* unit parity of every packed gate kernel against its boolean truth table;
* a seeded differential sweep over hundreds of randomly perturbed netlists
  and pattern counts (including non-multiples of 64 and floating
  ``gate.a/b == -1`` operands);
* hypothesis-driven random netlist/pattern generation on top.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    AUTO_BACKEND_MIN_PATTERNS,
    PLANE_WIDTH,
    SIM_BACKENDS,
    Gate,
    GateType,
    Netlist,
    evaluate_gate,
    evaluate_gate_packed,
    num_planes,
    pack_bits,
    resolve_sim_backend,
    simulate_bits,
    simulate_bits_packed,
    simulate_planes,
    simulate_words,
    unpack_bits,
)
from repro.engine import BatchEvaluator, EvalCache
from repro.error import ErrorEvaluator
from repro.generators import array_multiplier, perturb_netlist, ripple_carry_adder
from repro.generators.perturbation import PerturbationConfig
from repro.registry import RegistryError

pytestmark = pytest.mark.sim_backends


def random_input_bits(netlist: Netlist, patterns: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((patterns, netlist.num_inputs)) < 0.5


def assert_backends_agree(netlist: Netlist, input_bits: np.ndarray) -> None:
    reference = simulate_bits(netlist, input_bits)
    packed = simulate_bits_packed(netlist, input_bits)
    assert packed.dtype == reference.dtype
    assert packed.shape == reference.shape
    assert np.array_equal(reference, packed)


# --------------------------------------------------------------------- #
# Registry and selection
# --------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_builtin_keys(self):
        assert list(SIM_BACKENDS) == ["bool", "bitplane"]
        assert SIM_BACKENDS.get("bool") is simulate_bits
        assert SIM_BACKENDS.get("bitplane") is simulate_bits_packed

    def test_unknown_key_lists_available(self):
        with pytest.raises(RegistryError, match="bitplane"):
            resolve_sim_backend("cuda")

    def test_default_is_bool(self):
        assert resolve_sim_backend() is simulate_bits
        assert resolve_sim_backend(None, patterns=10**9) is simulate_bits

    def test_auto_selects_by_pattern_count(self):
        assert resolve_sim_backend("auto", patterns=AUTO_BACKEND_MIN_PATTERNS - 1) is simulate_bits
        assert (
            resolve_sim_backend("auto", patterns=AUTO_BACKEND_MIN_PATTERNS)
            is simulate_bits_packed
        )
        assert resolve_sim_backend("auto") is simulate_bits

    def test_callable_passes_through(self):
        def custom(netlist, bits):  # pragma: no cover - identity placeholder
            return simulate_bits(netlist, bits)

        assert resolve_sim_backend(custom) is custom

    def test_unknown_backend_fails_fast_in_evaluator(self, multiplier4):
        with pytest.raises(RegistryError):
            ErrorEvaluator(multiplier4, sim_backend="nope")
        with pytest.raises(RegistryError):
            BatchEvaluator(multiplier4, sim_backend="nope")


# --------------------------------------------------------------------- #
# pack / unpack
# --------------------------------------------------------------------- #
class TestPacking:
    @settings(max_examples=60)
    @given(
        patterns=st.integers(min_value=0, max_value=300),
        rows=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip(self, patterns, rows, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random((rows, patterns)) < 0.5
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (rows, num_planes(patterns))
        assert np.array_equal(unpack_bits(packed, patterns), bits)

    def test_one_dimensional_roundtrip(self):
        bits = np.array([True, False, True] * 43)  # 129 = 2*64 + 1 patterns
        packed = pack_bits(bits)
        assert packed.shape == (num_planes(129),)
        assert np.array_equal(unpack_bits(packed, 129), bits)

    def test_num_planes(self):
        assert [num_planes(p) for p in (0, 1, 63, 64, 65, 128)] == [0, 1, 1, 1, 2, 2]
        with pytest.raises(ValueError):
            num_planes(-1)

    def test_unpack_rejects_overlong_pattern_count(self):
        packed = pack_bits(np.ones(64, dtype=bool))
        with pytest.raises(ValueError):
            unpack_bits(packed, 65)


# --------------------------------------------------------------------- #
# Per-gate kernel parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("gate_type", list(GateType))
def test_packed_gate_matches_bool_gate(gate_type, rng):
    patterns = 200  # deliberately not a multiple of PLANE_WIDTH
    a_bits = rng.random(patterns) < 0.5
    b_bits = rng.random(patterns) < 0.5
    expected = evaluate_gate(gate_type, a_bits, b_bits)
    packed = evaluate_gate_packed(gate_type, pack_bits(a_bits), pack_bits(b_bits))
    assert np.array_equal(unpack_bits(packed, patterns), expected)


@pytest.mark.parametrize("gate_type", list(GateType))
def test_inplace_simulation_kernel_matches_bool_gate(gate_type, rng):
    """Pin the simulator's in-place kernels (not just PACKED_GATE_FUNCTIONS).

    ``simulate_planes`` dispatches to its own allocation-free kernel table;
    a one-gate netlist per gate type proves each kernel agrees with the
    boolean truth-table source in ``gates.py``, so the two packed tables
    cannot drift apart unnoticed.
    """
    netlist = Netlist(
        name=f"single_{gate_type.name.lower()}",
        kind="test",
        input_words={"a": (0,), "b": (1,)},
        output_bits=(2,),
        gates=[
            Gate(gate_type)
            if gate_type in (GateType.CONST0, GateType.CONST1)
            else (Gate(gate_type, 0) if gate_type in (GateType.BUF, GateType.NOT)
                  else Gate(gate_type, 0, 1))
        ],
    )
    for patterns in (1, 65, 200):
        assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))


# --------------------------------------------------------------------- #
# Differential sweep: perturbed netlists x pattern counts
# --------------------------------------------------------------------- #
def test_differential_seeded_sweep():
    """>= 200 random netlist/pattern cases, bit-identical across backends."""
    rng = np.random.default_rng(0xB17)
    bases = [
        ripple_carry_adder(3),
        ripple_carry_adder(5),
        array_multiplier(3),
        array_multiplier(4),
    ]
    pattern_counts = [1, 63, 64, 65, PLANE_WIDTH * 2, 197]
    cases = 0
    for base in bases:
        for seed in range(9):
            config = PerturbationConfig(num_mutations=1 + seed, locality=16)
            netlist = perturb_netlist(base, seed=seed, config=config)
            for patterns in pattern_counts:
                assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))
                cases += 1
    assert cases >= 200


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=4),
    kind=st.sampled_from(["adder", "multiplier"]),
    mutations=st.integers(min_value=0, max_value=10),
    perturb_seed=st.integers(min_value=0, max_value=2**31 - 1),
    patterns=st.integers(min_value=1, max_value=180),
    pattern_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_differential_hypothesis(width, kind, mutations, perturb_seed, patterns, pattern_seed):
    base = ripple_carry_adder(width) if kind == "adder" else array_multiplier(width)
    if mutations:
        config = PerturbationConfig(num_mutations=mutations, locality=24)
        netlist = perturb_netlist(base, seed=perturb_seed, config=config)
    else:
        netlist = base
    rng = np.random.default_rng(pattern_seed)
    assert_backends_agree(netlist, random_input_bits(netlist, patterns, rng))


def test_floating_operands_read_as_zero():
    """Gates with ``a``/``b`` == -1 see constant-0 inputs in both backends."""
    netlist = Netlist(
        name="floating",
        kind="test",
        input_words={"a": (0, 1)},
        # node ids: inputs 0-1, gates 2-6
        output_bits=(2, 3, 4, 5, 6),
        gates=[
            Gate(GateType.NOT, 0),         # regular unary (b floats by design)
            Gate(GateType.CONST1),         # both operands float
            Gate(GateType.AND, 0, -1),     # binary gate with floating b
            Gate(GateType.ORNOT, -1, 1),   # binary gate with floating a
            Gate(GateType.BUF, -1),        # unary gate with floating a
        ],
    )
    rng = np.random.default_rng(7)
    for patterns in (1, 64, 65, 130):
        bits = random_input_bits(netlist, patterns, rng)
        assert_backends_agree(netlist, bits)
        outputs = simulate_bits_packed(netlist, bits)
        assert not outputs[:, 2].any()                                       # a AND 0 == 0
        assert np.array_equal(outputs[:, 3], np.logical_not(bits[:, 1]))     # 0 OR NOT b
        assert not outputs[:, 4].any()                                       # BUF of floating == 0


def test_simulate_planes_shape_validation(multiplier4):
    with pytest.raises(ValueError):
        simulate_planes(multiplier4, np.zeros((3, 2), dtype=np.uint64))
    with pytest.raises(ValueError):
        simulate_bits_packed(multiplier4, np.zeros((4, 3), dtype=bool))


# --------------------------------------------------------------------- #
# Word-level and evaluator-level equivalence
# --------------------------------------------------------------------- #
def test_simulate_words_backends_agree(multiplier4, rng):
    operands = {
        "a": rng.integers(0, 16, size=321),
        "b": rng.integers(0, 16, size=321),
    }
    reference = simulate_words(multiplier4, operands, backend="bool")
    assert np.array_equal(simulate_words(multiplier4, operands, backend="bitplane"), reference)
    assert np.array_equal(simulate_words(multiplier4, operands, backend="auto"), reference)
    assert np.array_equal(simulate_words(multiplier4, operands), reference)


def test_error_evaluator_backends_bit_identical(multiplier4):
    circuit = perturb_netlist(multiplier4, seed=11)
    reports = {
        backend: ErrorEvaluator(multiplier4, sim_backend=backend).evaluate(circuit)
        for backend in ("bool", "bitplane", "auto")
    }
    assert reports["bool"].metrics == reports["bitplane"].metrics
    assert reports["bool"].metrics == reports["auto"].metrics


def test_error_evaluator_monte_carlo_backends_bit_identical():
    reference = ripple_carry_adder(16)
    circuit = perturb_netlist(reference, seed=5)
    bool_report = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=2048, sim_backend="bool"
    ).evaluate(circuit)
    packed_report = ErrorEvaluator(
        reference, max_exhaustive_inputs=10, num_samples=2048, sim_backend="bitplane"
    ).evaluate(circuit)
    assert bool_report.method == "monte_carlo"
    assert bool_report.metrics == packed_report.metrics


def test_streaming_evaluator_matches_one_shot(multiplier4):
    circuit = perturb_netlist(multiplier4, seed=13)
    one_shot = ErrorEvaluator(multiplier4, sim_backend="bool").evaluate(circuit)
    for chunk in (1, 37, 64, 100, 256, 10**6):
        chunked = ErrorEvaluator(
            multiplier4, sim_backend="bitplane", chunk_patterns=chunk
        ).evaluate(circuit)
        exact_fields = ("med", "mae", "wce", "wce_relative", "error_probability", "mse")
        for field in exact_fields:
            assert getattr(chunked.metrics, field) == getattr(one_shot.metrics, field), field
        assert chunked.metrics.mre == pytest.approx(one_shot.metrics.mre, rel=1e-12)


def test_streaming_evaluator_rejects_bad_chunk(multiplier4):
    with pytest.raises(ValueError):
        ErrorEvaluator(multiplier4, chunk_patterns=0)


# --------------------------------------------------------------------- #
# Engine integration: backend changes neither results nor cache keys
# --------------------------------------------------------------------- #
def test_engine_results_and_cache_shared_across_backends(multiplier4):
    circuits = [perturb_netlist(multiplier4, seed=s) for s in range(6)]
    cache = EvalCache()
    bool_engine = BatchEvaluator(multiplier4, cache=cache, mode="serial", sim_backend="bool")
    bool_reports = bool_engine.evaluate_errors(circuits)

    packed_engine = BatchEvaluator(
        multiplier4, cache=cache, mode="serial", sim_backend="bitplane"
    )
    before = cache.stats()
    packed_reports = packed_engine.evaluate_errors(circuits)
    after = cache.stats()

    # Identical cache keys: the packed engine is served entirely from the
    # bool engine's entries without re-simulating anything.
    assert after.hits - before.hits == len(circuits)
    assert after.misses == before.misses
    for bool_report, packed_report in zip(bool_reports, packed_reports):
        assert bool_report.metrics == packed_report.metrics

    # And an uncached packed engine recomputes the exact same metrics.
    fresh = BatchEvaluator(
        multiplier4, cache=EvalCache(), mode="serial", sim_backend="bitplane"
    ).evaluate_errors(circuits)
    for bool_report, fresh_report in zip(bool_reports, fresh):
        assert bool_report.metrics == fresh_report.metrics


def test_engine_inherits_backend_from_evaluator(multiplier4):
    evaluator = ErrorEvaluator(multiplier4, sim_backend="bitplane")
    engine = BatchEvaluator(error_evaluator=evaluator)
    assert engine.sim_backend == "bitplane"


def test_degenerate_chunk_shares_cache_with_one_shot(multiplier4):
    """chunk_patterns >= num_patterns is one-shot: same results, same cache keys."""
    circuit = perturb_netlist(multiplier4, seed=17)
    cache = EvalCache()
    one_shot = BatchEvaluator(multiplier4, cache=cache, mode="serial")
    [report] = one_shot.evaluate_errors([circuit])

    big_chunk = ErrorEvaluator(multiplier4, chunk_patterns=10**9)
    assert not big_chunk.streaming
    degenerate = BatchEvaluator(error_evaluator=big_chunk, cache=cache, mode="serial")
    before = cache.stats()
    [served] = degenerate.evaluate_errors([circuit])
    after = cache.stats()
    assert after.hits - before.hits == 1
    assert after.misses == before.misses
    assert served.metrics == report.metrics

    # A genuinely streaming evaluator keys its own cache namespace.
    streaming = ErrorEvaluator(multiplier4, chunk_patterns=64)
    assert streaming.streaming
    streaming_engine = BatchEvaluator(error_evaluator=streaming, cache=cache, mode="serial")
    before = cache.stats()
    [streamed] = streaming_engine.evaluate_errors([circuit])
    after = cache.stats()
    assert after.misses == before.misses + 1
    assert streamed.metrics.med == report.metrics.med
