"""Behavioural tests of the approximate multiplier families."""

import numpy as np
import pytest

from repro.generators import (
    approximate_cell_multiplier,
    array_multiplier,
    broken_array_multiplier,
    or_partial_product_multiplier,
    recursive_multiplier,
    truncated_multiplier,
)


def _mean_abs_error(circuit, width, rng, samples=400):
    a = rng.integers(0, 1 << width, samples)
    b = rng.integers(0, 1 << width, samples)
    approx = circuit.evaluate_words({"a": a, "b": b})
    return float(np.abs(approx.astype(np.int64) - a * b).mean())


@pytest.mark.parametrize(
    "factory",
    [
        lambda: truncated_multiplier(4, 0),
        lambda: broken_array_multiplier(4, 0, 0),
        lambda: or_partial_product_multiplier(4, 0),
        lambda: approximate_cell_multiplier(4, 0, 1),
        lambda: recursive_multiplier(4, 0),
    ],
)
def test_zero_approximation_is_exact(factory, rng):
    assert _mean_abs_error(factory(), 4, rng) == 0.0


def test_truncated_multiplier_error_monotone_in_cut(rng):
    errors = [_mean_abs_error(truncated_multiplier(8, cut), 8, rng) for cut in (1, 3, 5, 7)]
    assert errors == sorted(errors)
    assert errors[-1] > 0.0


def test_truncated_multiplier_never_overestimates(rng):
    circuit = truncated_multiplier(8, 4)
    a = rng.integers(0, 256, 300)
    b = rng.integers(0, 256, 300)
    approx = circuit.evaluate_words({"a": a, "b": b})
    assert np.all(approx <= a * b)


def test_broken_array_error_grows_with_breaks(rng):
    mild = _mean_abs_error(broken_array_multiplier(8, 1, 2), 8, rng)
    severe = _mean_abs_error(broken_array_multiplier(8, 4, 8), 8, rng)
    assert severe > mild


def test_or_pp_multiplier_introduces_error(rng):
    assert _mean_abs_error(or_partial_product_multiplier(8, 6), 8, rng) > 0.0


@pytest.mark.parametrize("variant", [1, 2, 3, 4])
def test_approximate_cell_multiplier_error_nonzero(variant, rng):
    assert _mean_abs_error(approximate_cell_multiplier(8, 6, variant), 8, rng) > 0.0


def test_recursive_multiplier_kulkarni_signature():
    # The classic inaccurate 2x2 block computes 3 * 3 = 7.
    circuit = recursive_multiplier(4, approx_level=8)
    assert circuit.evaluate_words({"a": [3], "b": [3]})[0] != 9


def test_recursive_multiplier_error_grows_with_level(rng):
    errors = [_mean_abs_error(recursive_multiplier(8, level), 8, rng) for level in (0, 4, 8)]
    assert errors[0] == 0.0
    assert errors[1] <= errors[2]
    assert errors[2] > 0.0


def test_recursive_multiplier_requires_power_of_two():
    with pytest.raises(ValueError):
        recursive_multiplier(6, 0)
    with pytest.raises(ValueError):
        recursive_multiplier(2, 0)


def test_multiplier_generators_validate_parameters():
    with pytest.raises(ValueError):
        truncated_multiplier(8, 16)
    with pytest.raises(ValueError):
        broken_array_multiplier(8, -1, 0)
    with pytest.raises(ValueError):
        or_partial_product_multiplier(8, 20)
    with pytest.raises(ValueError):
        approximate_cell_multiplier(8, 20, 1)


def test_multiplier_interface_width_is_preserved():
    for circuit in (
        truncated_multiplier(8, 5),
        broken_array_multiplier(8, 2, 3),
        or_partial_product_multiplier(8, 4),
        approximate_cell_multiplier(8, 4, 2),
        recursive_multiplier(8, 4),
    ):
        assert circuit.num_outputs == 16
        assert circuit.word_width("a") == 8


def test_multiplier_metadata_records_family():
    assert truncated_multiplier(8, 3).meta["family"] == "trunc_mult"
    assert broken_array_multiplier(8, 1, 1).meta["family"] == "broken_array"
    assert recursive_multiplier(8, 2).meta["family"] == "recursive"


def test_approximate_multipliers_not_larger_than_exact(rng):
    exact_gates = array_multiplier(8).live_gate_count()
    truncated_gates = truncated_multiplier(8, 6).live_gate_count()
    assert truncated_gates < exact_gates
