"""Regression tests for the exploration-time accounting and the
``reSynthesis_time_s`` -> ``resynthesis_time_s`` deprecation shim."""

from __future__ import annotations

import warnings

import pytest

from repro.core import ExplorationCost, ExplorationSummary, seconds_to_days


def _cost(**overrides) -> ExplorationCost:
    base = dict(
        library_name="lib",
        num_circuits=10,
        exhaustive_time_s=1000.0,
        training_time_s=100.0,
        resynthesis_time_s=50.0,
        model_time_s=2.5,
    )
    base.update(overrides)
    return ExplorationCost(**base)


class TestExplorationCost:
    def test_as_dict_fields_and_values(self):
        cost = _cost()
        data = cost.as_dict()
        assert data == {
            "num_circuits": 10,
            "exhaustive_time_s": 1000.0,
            "training_time_s": 100.0,
            "resynthesis_time_s": 50.0,
            "model_time_s": 2.5,
            "approxfpgas_time_s": 152.5,
            "speedup": 1000.0 / 152.5,
        }

    def test_as_dict_uses_snake_case_key(self):
        assert "resynthesis_time_s" in _cost().as_dict()
        assert "reSynthesis_time_s" not in _cost().as_dict()

    def test_new_field_name_works_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cost = _cost()
            assert cost.resynthesis_time_s == 50.0

    def test_legacy_keyword_accepted_with_deprecation_warning(self):
        with pytest.deprecated_call():
            cost = ExplorationCost(
                library_name="lib",
                num_circuits=1,
                exhaustive_time_s=10.0,
                training_time_s=1.0,
                reSynthesis_time_s=2.0,
                model_time_s=0.5,
            )
        assert cost.resynthesis_time_s == 2.0
        assert cost.approxfpgas_time_s == pytest.approx(3.5)

    def test_legacy_attribute_readable_with_deprecation_warning(self):
        cost = _cost()
        with pytest.deprecated_call():
            assert cost.reSynthesis_time_s == 50.0

    def test_missing_resynthesis_raises(self):
        with pytest.raises(TypeError, match="resynthesis_time_s"):
            ExplorationCost(
                library_name="lib",
                num_circuits=1,
                exhaustive_time_s=10.0,
                training_time_s=1.0,
            )

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unexpected"):
            _cost(bogus_field=1.0)

    def test_frozen_and_equality(self):
        assert _cost() == _cost()
        with pytest.raises(Exception):
            _cost().resynthesis_time_s = 1.0

    def test_speedup_guard_against_zero_denominator(self):
        cost = _cost(training_time_s=0.0, resynthesis_time_s=0.0, model_time_s=0.0)
        assert cost.speedup > 0


class TestExplorationSummary:
    def test_cumulative_rows_running_sums(self):
        summary = ExplorationSummary()
        summary.add(_cost(library_name="a", exhaustive_time_s=100.0, training_time_s=10.0,
                          resynthesis_time_s=5.0, model_time_s=0.0))
        summary.add(_cost(library_name="b", exhaustive_time_s=200.0, training_time_s=20.0,
                          resynthesis_time_s=10.0, model_time_s=0.0))
        rows = summary.cumulative_rows()
        assert [row["library"] for row in rows] == ["a", "b"]
        assert rows[0]["cumulative_exhaustive_s"] == 100.0
        assert rows[1]["cumulative_exhaustive_s"] == 300.0
        assert rows[0]["cumulative_approxfpgas_s"] == pytest.approx(15.0)
        assert rows[1]["cumulative_approxfpgas_s"] == pytest.approx(45.0)
        assert summary.exhaustive_total_s == 300.0
        assert summary.approxfpgas_total_s == pytest.approx(45.0)
        assert summary.overall_speedup == pytest.approx(300.0 / 45.0)

    def test_row_keys_are_stable(self):
        summary = ExplorationSummary()
        summary.add(_cost())
        (row,) = summary.cumulative_rows()
        assert set(row) == {
            "library",
            "exhaustive_time_s",
            "approxfpgas_time_s",
            "cumulative_exhaustive_s",
            "cumulative_approxfpgas_s",
        }

    def test_seconds_to_days(self):
        assert seconds_to_days(86400.0) == 1.0
