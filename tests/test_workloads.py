"""Tests of the pluggable workload subsystem (`repro.workloads`).

Covers the registry error paths, the `ApproxAccelerator` protocol surface
of every built-in workload, the hardened quality metrics, the seeded
per-workload input sets, workload-namespaced engine cache keys, and the
frozen golden digests of seeded end-to-end `ExplorationSession` + NSGA-II
runs on the new (non-Gaussian) workloads
(``tests/fixtures/workload_golden.json``, generated when the subsystem was
introduced).  The Gaussian workload's bit-identity with the pre-workload
implementation is additionally pinned by ``tests/test_search_regression.py``
and ``tests/test_backcompat.py``.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api import ExplorationSession
from repro.autoax import AutoAxConfig, Configuration, default_autoax_run_id
from repro.engine import BatchEvaluator, EvalCache, accelerator_token, images_token
from repro.generators import build_adder_library, build_multiplier_library
from repro.registry import RegistryError
from repro.workloads import (
    QUALITY_METRICS,
    WORKLOADS,
    ApproxAccelerator,
    ConvolutionAccelerator,
    GaussianFilterAccelerator,
    SlotConfiguration,
    build_workload,
    components_from_library,
    default_image_set,
    gradient_similarity,
    psnr,
    psnr_score,
    ssim,
)

pytestmark = pytest.mark.workloads

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "workload_golden.json"
BUILTIN_WORKLOADS = ("gaussian", "sobel", "sharpen")


@pytest.fixture(scope="module")
def components():
    """The component setup the workload golden fixture was generated with."""
    multipliers = components_from_library(
        build_multiplier_library(8, size=30, seed=2), 6, max_error=0.1
    )
    adders = components_from_library(build_adder_library(16, size=24, seed=4), 5, max_error=0.02)
    return multipliers, adders


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def signature(entries):
    return [
        {
            "multipliers": list(entry.config.multiplier_indices),
            "adders": list(entry.config.adder_indices),
            "quality": repr(entry.quality),
            "cost": {name: repr(value) for name, value in sorted(entry.cost.items())},
        }
        for entry in entries
    ]


def digest(entries) -> str:
    blob = json.dumps(signature(entries), sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# --------------------------------------------------------------------- #
# Registry error paths
# --------------------------------------------------------------------- #
class TestWorkloadRegistry:
    def test_builtin_keys_registered(self):
        for key in BUILTIN_WORKLOADS:
            assert key in WORKLOADS

    def test_unknown_workload_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            WORKLOADS.get("does-not-exist")
        message = str(excinfo.value)
        for key in BUILTIN_WORKLOADS:
            assert key in message

    def test_build_workload_unknown_key(self, components):
        with pytest.raises(RegistryError):
            build_workload("does-not-exist", *components)

    def test_duplicate_registration_raises(self):
        with pytest.raises(RegistryError, match="already registered"):
            WORKLOADS.register("gaussian", GaussianFilterAccelerator)

    def test_registration_roundtrip(self, components):
        class BoxAccelerator(ConvolutionAccelerator):
            workload_name = "box-test"
            kernel = ((28, 28, 28), (28, 32, 28), (28, 28, 28))
            shift = 8
            quality_metric = "ssim"
            input_seed = 900

        WORKLOADS.register("box-test", BoxAccelerator)
        try:
            accelerator = build_workload("box-test", *components)
            assert accelerator.workload_name == "box-test"
            assert accelerator.num_multiplier_slots == 9
        finally:
            WORKLOADS.unregister("box-test")
        with pytest.raises(RegistryError):
            WORKLOADS.get("box-test")

    def test_autoax_config_validates_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            AutoAxConfig(workload="does-not-exist")

    def test_unknown_quality_metric_fails_at_construction(self, components):
        with pytest.raises(RegistryError, match="quality metric"):
            ConvolutionAccelerator(*components, quality_metric="does-not-exist")


# --------------------------------------------------------------------- #
# Protocol surface of the built-in workloads
# --------------------------------------------------------------------- #
class TestProtocol:
    @pytest.mark.parametrize("key", BUILTIN_WORKLOADS)
    def test_slot_declaration_consistent(self, components, key):
        accelerator = build_workload(key, *components)
        assert isinstance(accelerator, ApproxAccelerator)
        multiplier_slot, adder_slot = accelerator.slots()
        assert multiplier_slot.kind == "multiplier"
        assert adder_slot.kind == "adder"
        assert multiplier_slot.count == accelerator.num_multiplier_slots
        assert adder_slot.count == accelerator.num_adder_slots
        assert accelerator.design_space_size == (
            len(components[0]) ** multiplier_slot.count * len(components[1]) ** adder_slot.count
        )

    def test_expected_slot_shapes(self, components):
        shapes = {
            key: (
                build_workload(key, *components).num_multiplier_slots,
                build_workload(key, *components).num_adder_slots,
            )
            for key in BUILTIN_WORKLOADS
        }
        assert shapes == {"gaussian": (9, 8), "sobel": (12, 8), "sharpen": (5, 3)}

    @pytest.mark.parametrize("key", BUILTIN_WORKLOADS)
    def test_exact_configuration_reproduces_exact_output(self, components, key):
        accelerator = build_workload(key, *components)
        config = accelerator.exact_configuration()
        images = accelerator.default_inputs(24)[:2]
        for image in images:
            assert np.array_equal(
                accelerator.apply(image, config), accelerator.exact_filter(image)
            )
        assert accelerator.quality(images, config) == pytest.approx(1.0)

    @pytest.mark.parametrize("key", BUILTIN_WORKLOADS)
    def test_prepared_path_matches_unprepared(self, components, key):
        accelerator = build_workload(key, *components)
        images = accelerator.default_inputs(24)[:2]
        rng = np.random.default_rng(3)
        config = accelerator.random_configuration(rng)
        prepared = accelerator.prepare_inputs(images)
        quality, cost = accelerator.evaluate_prepared(prepared, config)
        assert quality == accelerator.quality(images, config)
        assert cost == accelerator.hw_cost(config)
        # The legacy spelling is an alias of the protocol method.
        legacy = accelerator.prepare_images(images)
        assert accelerator.quality_prepared(legacy, config) == quality

    @pytest.mark.parametrize("key", BUILTIN_WORKLOADS)
    def test_mutation_changes_at_most_one_slot(self, components, key):
        accelerator = build_workload(key, *components)
        rng = np.random.default_rng(5)
        config = accelerator.exact_configuration()
        mutated = accelerator.mutate_configuration(config, rng)
        differences = sum(
            a != b for a, b in zip(config.multiplier_indices, mutated.multiplier_indices)
        ) + sum(a != b for a, b in zip(config.adder_indices, mutated.adder_indices))
        assert differences <= 1
        assert len(mutated.multiplier_indices) == accelerator.num_multiplier_slots
        assert len(mutated.adder_indices) == accelerator.num_adder_slots

    def test_make_configuration_validates_slot_shape(self, components):
        sobel = build_workload("sobel", *components)
        config = sobel.make_configuration([0] * 12, [0] * 8)
        assert isinstance(config, SlotConfiguration)
        with pytest.raises(ValueError, match="sobel"):
            sobel.make_configuration([0] * 9, [0] * 8)
        with pytest.raises(ValueError, match="adder slots"):
            sobel.make_configuration([0] * 12, [0] * 3)

    def test_legacy_configuration_compares_equal_to_generic(self):
        legacy = Configuration((1,) * 9, (2,) * 8)
        generic = SlotConfiguration((1,) * 9, (2,) * 8)
        assert legacy == generic and generic == legacy
        assert hash(legacy) == hash(generic)
        assert legacy != SlotConfiguration((0,) * 9, (2,) * 8)

    def test_sobel_constant_image_has_zero_gradient(self, components):
        sobel = build_workload("sobel", *components)
        constant = np.full((16, 16), 120, dtype=np.uint8)
        assert not sobel.exact_filter(constant).any()

    def test_sharpen_constant_image_is_identity(self, components):
        sharpen = build_workload("sharpen", *components)
        constant = np.full((16, 16), 57, dtype=np.uint8)
        assert np.array_equal(sharpen.exact_filter(constant), constant)

    def test_convolution_rejects_degenerate_kernels(self, components):
        with pytest.raises(ValueError, match="square"):
            ConvolutionAccelerator(*components, kernel=((1, 2), (3, 4), (5, 6)))
        with pytest.raises(ValueError, match="non-zero"):
            ConvolutionAccelerator(*components, kernel=((0, 0, 0),) * 3)


# --------------------------------------------------------------------- #
# Quality metrics (hardening contract)
# --------------------------------------------------------------------- #
class TestQualityMetrics:
    def test_registry_keys(self):
        assert set(QUALITY_METRICS.keys()) >= {"ssim", "psnr", "gms"}
        with pytest.raises(RegistryError):
            QUALITY_METRICS.get("does-not-exist")

    def test_psnr_identical_is_inf_without_warning(self):
        image = default_image_set(16)[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert psnr(image, image) == float("inf")
            assert psnr_score(image, image) == 1.0

    def test_psnr_score_bounded_and_monotone(self):
        image = default_image_set(16)[0].astype(np.int64)
        slightly = np.clip(image + 1, 0, 255)
        badly = np.clip(image + 40, 0, 255)
        near = psnr_score(image, slightly)
        far = psnr_score(image, badly)
        assert 0.0 < far < near <= 1.0

    def test_ssim_window_validation(self):
        image = default_image_set(16)[0]
        with pytest.raises(ValueError, match="window 17 exceeds"):
            ssim(image, image, window=17)
        with pytest.raises(ValueError, match="at least 1"):
            ssim(image, image, window=0)
        assert ssim(image, image, window=16) == pytest.approx(1.0)

    def test_gradient_similarity_contract(self):
        image = default_image_set(16)[0]
        assert gradient_similarity(image, image) == pytest.approx(1.0)
        assert gradient_similarity(image, 255 - image) < 1.0
        with pytest.raises(ValueError):
            gradient_similarity(image, image[:8, :8])

    def test_autoax_quality_reexports_are_aliases(self):
        from repro.autoax import quality as legacy
        from repro.workloads import quality as canonical

        assert legacy.ssim is canonical.ssim
        assert legacy.psnr is canonical.psnr
        assert legacy.mean_ssim is canonical.mean_ssim
        assert legacy.QUALITY_METRICS is canonical.QUALITY_METRICS


# --------------------------------------------------------------------- #
# Seeded per-workload input sets
# --------------------------------------------------------------------- #
class TestInputSets:
    def test_seed_zero_is_bit_identical_to_legacy_alias(self):
        from repro.autoax.images import default_image_set as legacy_set

        for new, old in zip(default_image_set(24, seed=0), legacy_set(24)):
            assert np.array_equal(new, old)

    def test_workload_input_sets_are_pairwise_distinct(self, components):
        sets = {
            key: build_workload(key, *components).default_inputs(24)
            for key in BUILTIN_WORKLOADS
        }
        tokens = {key: images_token(images) for key, images in sets.items()}
        assert len(set(tokens.values())) == len(BUILTIN_WORKLOADS)
        # Every single image differs between any two workloads, including
        # the structured (gradient / checkerboard) ones.
        keys = list(sets)
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                for a, b in zip(sets[left], sets[right]):
                    assert not np.array_equal(a, b)

    def test_seeded_images_are_valid(self):
        for seed in (0, 101, 202):
            for image in default_image_set(20, seed=seed):
                assert image.shape == (20, 20)
                assert image.dtype == np.uint8

    def test_instance_input_seed_override_is_respected(self, components):
        """An ad-hoc workload's instance-level ``input_seed`` must drive its
        default inputs (regression: a classmethod implementation silently
        fell back to the class-level Gaussian seed)."""
        ad_hoc = ConvolutionAccelerator(
            *components,
            kernel=((28, 28, 28), (28, 32, 28), (28, 28, 28)),
            shift=8,
            workload_name="box",
            input_seed=907,
        )
        expected = default_image_set(20, seed=907)
        for image, reference in zip(ad_hoc.default_inputs(20), expected):
            assert np.array_equal(image, reference)
        gaussian = build_workload("gaussian", *components)
        assert images_token(ad_hoc.default_inputs(20)) != images_token(
            gaussian.default_inputs(20)
        )


# --------------------------------------------------------------------- #
# Workload-namespaced engine cache keys
# --------------------------------------------------------------------- #
class TestEngineNamespacing:
    def test_accelerator_tokens_differ_per_workload(self, components):
        tokens = {
            accelerator_token(build_workload(key, *components)) for key in BUILTIN_WORKLOADS
        }
        assert len(tokens) == len(BUILTIN_WORKLOADS)

    def test_foreign_accelerator_keeps_legacy_token(self, components):
        from types import SimpleNamespace

        multipliers, adders = components
        foreign = SimpleNamespace(multipliers=multipliers, adders=adders)
        assert accelerator_token(foreign)  # duck-typed path still works

    def test_same_shape_workloads_never_share_cache_entries(self, components):
        """Two workloads with identical slot shapes, components, images and
        configuration must produce two distinct cache entries (they compute
        different outputs for the same assignment)."""
        gaussian = build_workload("gaussian", *components)
        box = ConvolutionAccelerator(
            *components,
            kernel=((28, 28, 28), (28, 32, 28), (28, 28, 28)),
            shift=8,
            workload_name="box",
        )
        assert box.num_multiplier_slots == gaussian.num_multiplier_slots
        assert box.num_adder_slots == gaussian.num_adder_slots

        images = default_image_set(24)[:2]
        rng = np.random.default_rng(9)
        config = gaussian.random_configuration(rng)

        cache = EvalCache()
        engine = BatchEvaluator(cache=cache, mode="serial")
        first = engine.evaluate_configurations(gaussian, images, [config])[0]
        before = cache.stats()
        second = engine.evaluate_configurations(box, images, [config])[0]
        after = cache.stats()
        assert after.misses == before.misses + 1  # no cross-workload hit
        assert after.size == 2
        assert first["quality"] != second["quality"]

    def test_cross_workload_session_runs_share_component_cache(self, components):
        """One session serving two workloads reuses circuit-level results
        (err/fpga) while keeping the accelerator entries per workload."""
        session = ExplorationSession(seed=11)
        config = dict(
            parameters=("area",),
            num_training_samples=4,
            num_random_baseline=2,
            hill_climb_iterations=10,
            image_size=16,
            seed=11,
        )
        sobel = session.run_autoax(*components, AutoAxConfig(workload="sobel", **config))
        sharpen = session.run_autoax(*components, AutoAxConfig(workload="sharpen", **config))
        assert sobel.scenarios["area"].front
        assert sharpen.scenarios["area"].front
        assert set(session.runs) == {"autoax-sobel", "autoax-sharpen"}
        assert digest(sobel.baseline) != digest(sharpen.baseline)

    def test_default_run_ids(self):
        assert default_autoax_run_id("gaussian") == "autoax-gaussian-filter"
        assert default_autoax_run_id("sobel") == "autoax-sobel"


# --------------------------------------------------------------------- #
# Frozen golden digests: seeded session + NSGA-II per workload
# --------------------------------------------------------------------- #
class TestWorkloadGoldens:
    @pytest.mark.parametrize("workload", BUILTIN_WORKLOADS)
    def test_session_nsga2_run_matches_golden(self, components, golden, workload):
        config = AutoAxConfig(
            parameters=("area",),
            num_training_samples=12,
            num_random_baseline=8,
            hill_climb_iterations=60,
            image_size=32,
            seed=11,
            search_strategy="nsga2",
            workload=workload,
        )
        session = ExplorationSession(seed=11)
        result = session.run_autoax(*components, config)
        scenario = result.scenarios["area"]
        expected = golden[workload]
        assert digest(scenario.candidates) == expected["candidates"]
        assert digest(scenario.front) == expected["front"]
        assert digest(result.baseline) == expected["baseline"]
        assert len(scenario.front) == expected["num_front"]

    def test_goldens_distinct_across_workloads(self, golden):
        fronts = {golden[workload]["front"] for workload in BUILTIN_WORKLOADS}
        assert len(fronts) == len(BUILTIN_WORKLOADS)


# --------------------------------------------------------------------- #
# New workloads through every registered search strategy
# --------------------------------------------------------------------- #
class TestSearchStrategiesOnNewWorkloads:
    @pytest.mark.parametrize("strategy", ["hill_climb", "random_archive", "nsga2"])
    def test_sobel_strategies_run(self, components, strategy):
        from repro.autoax import HwCostEstimator, QorEstimator, collect_training_samples
        from repro.autoax.search import SEARCH_STRATEGIES

        sobel = build_workload("sobel", *components)
        images = sobel.default_inputs(16)[:2]
        samples = collect_training_samples(sobel, images, 8, seed=3)
        qor = QorEstimator().fit(samples)
        hw = HwCostEstimator("area").fit(samples)
        archive = SEARCH_STRATEGIES.get(strategy)(sobel, qor, hw, iterations=20, seed=7)
        assert archive
        for entry in archive:
            assert len(entry.config.multiplier_indices) == 12
            assert len(entry.config.adder_indices) == 8
