"""Tests of feature extraction and the end-to-end ApproxFPGAs flow."""

import pytest

from repro.core import ApproxFpgasConfig, ApproxFpgasFlow
from repro.features import ASIC_FEATURE_NAMES, FEATURE_NAMES, extract_features, feature_matrix
from repro.generators import array_multiplier, truncated_multiplier
from repro.ml import MODEL_IDS


# ----------------------------- features -------------------------------- #
def test_feature_vector_layout(multiplier4):
    features = extract_features(multiplier4)
    assert features.names == FEATURE_NAMES
    assert features.values.shape == (len(FEATURE_NAMES),)
    as_dict = features.as_dict()
    for name in ASIC_FEATURE_NAMES:
        assert as_dict[name] > 0.0
    assert as_dict["num_inputs"] == 8.0


def test_feature_matrix_alignment():
    circuits = [array_multiplier(4), truncated_multiplier(4, 2), truncated_multiplier(4, 4)]
    X, names = feature_matrix(circuits)
    assert X.shape == (3, len(FEATURE_NAMES))
    assert names == list(FEATURE_NAMES)
    # The truncated circuits must not have more gates than the exact one.
    gate_column = names.index("live_gates")
    assert X[1, gate_column] <= X[0, gate_column]
    assert X[2, gate_column] <= X[1, gate_column]


def test_feature_matrix_report_length_mismatch(asic_synth, multiplier4):
    report = asic_synth.synthesize(multiplier4)
    with pytest.raises(ValueError):
        feature_matrix([multiplier4, truncated_multiplier(4, 1)], asic_reports=[report])


def test_feature_matrix_empty():
    X, names = feature_matrix([])
    assert X.shape == (0, len(FEATURE_NAMES))
    assert names == list(FEATURE_NAMES)


# --------------------------- configuration ----------------------------- #
def test_config_validation():
    with pytest.raises(ValueError):
        ApproxFpgasConfig(training_fraction=0.0)
    with pytest.raises(ValueError):
        ApproxFpgasConfig(validation_fraction=1.0)
    with pytest.raises(ValueError):
        ApproxFpgasConfig(num_pseudo_fronts=0)
    with pytest.raises(ValueError):
        ApproxFpgasConfig(top_k_models=0)
    with pytest.raises(ValueError):
        ApproxFpgasConfig(fpga_parameters=("latency", "frequency"))


# ------------------------------ flow ------------------------------------ #
@pytest.fixture(scope="module")
def flow_result(small_multiplier_library):
    config = ApproxFpgasConfig(
        training_fraction=0.25,
        min_training_circuits=15,
        num_pseudo_fronts=2,
        top_k_models=2,
        model_ids=["ML2", "ML4", "ML5", "ML11", "ML14", "ML18"],
        seed=7,
        evaluate_coverage=True,
    )
    return ApproxFpgasFlow(small_multiplier_library, config=config).run()


def test_flow_records_cover_library(flow_result, small_multiplier_library):
    assert set(flow_result.records) == set(small_multiplier_library.names())


def test_flow_training_and_validation_disjoint(flow_result):
    assert set(flow_result.training_names).isdisjoint(flow_result.validation_names)
    assert len(flow_result.validation_names) >= 1


def test_flow_evaluates_every_requested_model(flow_result):
    table = flow_result.fidelity_table()
    for parameter in ("latency", "power", "area"):
        assert set(table[parameter]) == {"ML2", "ML4", "ML5", "ML11", "ML14", "ML18"}
        for value in table[parameter].values():
            assert 0.0 <= value <= 1.0


def test_flow_top_models_sorted_by_fidelity(flow_result):
    top = flow_result.top_models("latency", k=3)
    fidelities = [score for _, score in top]
    assert fidelities == sorted(fidelities, reverse=True)


def test_flow_selects_candidates_and_synthesizes_them(flow_result):
    for outcome in flow_result.parameter_outcomes.values():
        assert outcome.candidate_names
        for name in outcome.candidate_names:
            assert flow_result.records[name].synthesized


def test_flow_final_front_is_nondominated(flow_result):
    from repro.core import dominates

    for parameter, outcome in flow_result.parameter_outcomes.items():
        front = outcome.final_front_names
        assert front
        points = {
            name: (
                flow_result.records[name].error.med,
                flow_result.records[name].fpga.parameter(parameter),
            )
            for name in front
        }
        for name_a, point_a in points.items():
            for name_b, point_b in points.items():
                if name_a != name_b:
                    assert not dominates(point_a, point_b) or point_a == point_b


def test_flow_coverage_between_zero_and_one(flow_result):
    for outcome in flow_result.parameter_outcomes.values():
        assert outcome.coverage is not None
        assert 0.0 <= outcome.coverage <= 1.0
        assert outcome.true_front_names


def test_flow_reports_meaningful_speedup(flow_result, small_multiplier_library):
    cost = flow_result.exploration_cost
    assert cost.num_circuits == len(small_multiplier_library)
    assert cost.exhaustive_time_s > cost.training_time_s
    assert cost.speedup > 1.0


def test_flow_estimates_stored_for_best_model(flow_result):
    some_record = next(iter(flow_result.records.values()))
    assert set(some_record.estimated) == {"latency", "power", "area"}


def test_flow_summary_structure(flow_result):
    summary = flow_result.summary()
    assert summary["num_circuits"] == len(flow_result.records)
    assert set(summary["coverage"]) == {"latency", "power", "area"}


def test_flow_rejects_empty_library():
    from repro.generators import CircuitLibrary

    empty = CircuitLibrary(name="empty", kind="multiplier", bitwidth=4)
    with pytest.raises(ValueError):
        ApproxFpgasFlow(empty)


def test_default_model_ids_are_all_18():
    assert tuple(ApproxFpgasConfig().model_ids) == MODEL_IDS
