"""Unit tests for the evaluation engine: fingerprints, cache, batch evaluator."""

from __future__ import annotations

import pytest

from repro.asic import AsicSynthesizer
from repro.circuits import Gate, GateType
from repro.engine import BatchEvaluator, EvalCache
from repro.error import ErrorEvaluator
from repro.fpga import FpgaSynthesizer
from repro.generators import array_multiplier, ripple_carry_adder
from repro.io import JsonDirectoryStore


# --------------------------------------------------------------------- #
# Netlist.fingerprint
# --------------------------------------------------------------------- #
class TestFingerprint:
    def test_deterministic_across_instances(self):
        assert array_multiplier(4).fingerprint() == array_multiplier(4).fingerprint()

    def test_ignores_name_and_meta(self, multiplier4):
        renamed = multiplier4.copy(name="totally_different", meta={"family": "x"})
        assert renamed.fingerprint() == multiplier4.fingerprint()

    def test_differs_across_structures(self):
        prints = {
            array_multiplier(4).fingerprint(),
            array_multiplier(5).fingerprint(),
            ripple_carry_adder(4).fingerprint(),
            ripple_carry_adder(8).fingerprint(),
        }
        assert len(prints) == 4

    def test_sensitive_to_gate_change(self, multiplier4):
        mutated = multiplier4.copy()
        gate = mutated.gates[0]
        new_type = GateType.OR if gate.gate_type != GateType.OR else GateType.AND
        mutated.gates[0] = Gate(new_type, gate.a, gate.b)
        assert mutated.fingerprint() != multiplier4.fingerprint()

    def test_sensitive_to_output_wiring(self, multiplier4):
        mutated = multiplier4.copy()
        bits = list(mutated.output_bits)
        bits[0], bits[1] = bits[1], bits[0]
        mutated.output_bits = tuple(bits)
        assert mutated.fingerprint() != multiplier4.fingerprint()

    def test_cached_on_instance(self, multiplier4):
        assert multiplier4.fingerprint() is multiplier4.fingerprint()


# --------------------------------------------------------------------- #
# EvalCache
# --------------------------------------------------------------------- #
class TestEvalCache:
    def test_basic_get_put_and_stats(self):
        cache = EvalCache(capacity=10)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        assert cache.get("a") == {"v": 1}
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = EvalCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EvalCache(capacity=0)

    def test_disk_backend_roundtrip(self, tmp_path):
        cache = EvalCache(capacity=4, disk_path=tmp_path / "cache")
        cache.put("err:x:y", {"med": 0.25})
        # A fresh cache over the same directory sees the entry (disk hit).
        warm = EvalCache(capacity=4, disk_path=tmp_path / "cache")
        assert warm.get("err:x:y") == {"med": 0.25}
        assert warm.stats().disk_hits == 1
        # Promoted to memory: second lookup is a memory hit.
        assert warm.get("err:x:y") == {"med": 0.25}
        assert warm.stats().disk_hits == 1
        assert warm.stats().hits == 2

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = EvalCache(capacity=1, disk_path=tmp_path / "cache")
        cache.put("k1", 1)
        cache.put("k2", 2)  # evicts k1 from memory
        assert cache.get("k1") == 1
        assert cache.stats().disk_hits == 1

    def test_reset_stats(self):
        cache = EvalCache()
        cache.get("missing")
        cache.reset_stats()
        assert cache.stats().lookups == 0

    def test_since_floors_deltas_when_counters_reset(self, tmp_path):
        # Regression: a snapshot taken before a store swap/reopen (which
        # resets cumulative counters) used to yield negative deltas.
        cache = EvalCache(capacity=4, disk_path=tmp_path / "cache")
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        before = cache.stats()
        assert before.hits == 1 and before.misses == 1
        reopened = EvalCache(capacity=4, disk_path=tmp_path / "cache")
        reopened.get("k")  # disk hit on the fresh instance
        delta = reopened.stats().since(before)
        # Fresh counters are below the snapshot: floored at 0, not negative.
        assert delta.hits == 0 and delta.misses == 0
        assert delta.evictions == 0 and delta.corrupt == 0
        assert delta.disk_hits == 1  # genuinely new traffic still shows
        assert delta.size == reopened.stats().size  # instantaneous, kept


class TestJsonDirectoryStore:
    def test_roundtrip_and_keys(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "store")
        store.put("err:abc:def", {"x": [1, 2, 3]})
        store.put("fpga:1:2", {"luts": 7})
        assert store.get("err:abc:def") == {"x": [1, 2, 3]}
        assert store.get("unknown") is None
        assert len(store) == 2
        assert sorted(store.keys()) == ["err:abc:def", "fpga:1:2"]
        store.clear()
        assert len(store) == 0

    def test_overwrite(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "store")
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1


# --------------------------------------------------------------------- #
# BatchEvaluator
# --------------------------------------------------------------------- #
class TestBatchEvaluator:
    def test_errors_bit_identical_to_serial_path(self, small_multiplier_library):
        circuits = list(small_multiplier_library)
        reference = small_multiplier_library.reference()
        engine = BatchEvaluator(reference, mode="serial")
        serial = ErrorEvaluator(reference)
        batched = engine.evaluate_errors(circuits)
        for circuit, report in zip(circuits, batched):
            expected = serial.evaluate(circuit)
            assert report.metrics == expected.metrics
            assert report.circuit_name == circuit.name
            assert report.method == expected.method
            assert report.num_patterns == expected.num_patterns

    def test_asic_and_fpga_match_direct_synthesis(self, small_multiplier_library):
        circuits = list(small_multiplier_library)[:12]
        engine = BatchEvaluator(
            small_multiplier_library.reference(),
            asic_synthesizer=AsicSynthesizer(),
            fpga_synthesizer=FpgaSynthesizer(),
            mode="serial",
        )
        asic_reports = engine.evaluate_asic(circuits)
        fpga_reports = engine.evaluate_fpga(circuits)
        asic = AsicSynthesizer()
        fpga = FpgaSynthesizer()
        for circuit, asic_report, fpga_report in zip(circuits, asic_reports, fpga_reports):
            assert asic_report == asic.synthesize(circuit)
            assert fpga_report == fpga.synthesize(circuit)

    def test_cached_results_bit_identical_and_hit(self, small_multiplier_library):
        circuits = list(small_multiplier_library)
        engine = BatchEvaluator(small_multiplier_library.reference(), mode="serial")
        first = engine.evaluate_errors(circuits)
        before = engine.stats()
        second = engine.evaluate_errors(circuits)
        after = engine.stats()
        assert [r.metrics for r in first] == [r.metrics for r in second]
        # The repeated pass is served entirely from the cache.
        assert after.misses == before.misses
        assert after.hits - before.hits == len(circuits)

    def test_structural_duplicates_share_one_entry(self, multiplier4):
        clones = [multiplier4.copy(name=f"clone_{i}") for i in range(5)]
        engine = BatchEvaluator(array_multiplier(4), mode="serial")
        reports = engine.evaluate_errors(clones)
        assert engine.stats().misses == 1
        assert [r.circuit_name for r in reports] == [c.name for c in clones]
        assert len({id(r.metrics) for r in reports}) >= 1
        assert all(r.metrics == reports[0].metrics for r in reports)

    def test_process_mode_identical_to_serial(self, small_multiplier_library):
        circuits = list(small_multiplier_library)[:8]
        reference = small_multiplier_library.reference()
        serial = BatchEvaluator(reference, mode="serial").evaluate_errors(circuits)
        parallel = BatchEvaluator(
            reference, mode="process", max_workers=2
        ).evaluate_errors(circuits)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_disk_backed_engine_warm_start(self, small_multiplier_library, tmp_path):
        circuits = list(small_multiplier_library)[:6]
        reference = small_multiplier_library.reference()
        cold = BatchEvaluator(
            reference, cache=EvalCache(disk_path=tmp_path / "evals"), mode="serial"
        )
        first = cold.evaluate_errors(circuits)
        warm = BatchEvaluator(
            reference, cache=EvalCache(disk_path=tmp_path / "evals"), mode="serial"
        )
        second = warm.evaluate_errors(circuits)
        assert [r.metrics for r in first] == [r.metrics for r in second]
        assert warm.stats().misses == 0
        assert warm.stats().disk_hits > 0

    def test_requires_reference_for_errors(self, multiplier4):
        engine = BatchEvaluator()
        with pytest.raises(ValueError, match="reference"):
            engine.evaluate_errors([multiplier4])

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            BatchEvaluator(mode="threads")

    def test_evaluate_library(self, small_multiplier_library):
        engine = BatchEvaluator(small_multiplier_library.reference(), mode="serial")
        evaluation = engine.evaluate_library(small_multiplier_library, include_fpga=True)
        assert evaluation.names == small_multiplier_library.names()
        assert len(evaluation.errors) == len(small_multiplier_library)
        assert len(evaluation.asic) == len(small_multiplier_library)
        assert evaluation.fpga is not None
        assert len(evaluation.fpga) == len(small_multiplier_library)

    def test_different_references_do_not_share_entries(self, multiplier4):
        cache = EvalCache()
        engine_a = BatchEvaluator(array_multiplier(4), cache=cache, mode="serial")
        engine_b = BatchEvaluator(
            array_multiplier(4), cache=cache, mode="serial", num_samples=16, seed=2, max_exhaustive_inputs=4
        )
        engine_a.evaluate_errors([multiplier4])
        engine_b.evaluate_errors([multiplier4])
        # Contexts differ (exhaustive vs monte-carlo) so both were misses.
        assert cache.stats().misses == 2


class TestComponentsFromLibraryEngine:
    def test_conflicting_synthesizers_rejected(self, small_multiplier_library):
        from repro.autoax import components_from_library

        engine = BatchEvaluator(
            small_multiplier_library.reference(), fpga_synthesizer=FpgaSynthesizer()
        )
        with pytest.raises(ValueError, match="conflicting fpga_synthesizer"):
            components_from_library(
                small_multiplier_library,
                3,
                fpga_synthesizer=FpgaSynthesizer(),
                engine=engine,
            )

    def test_shared_engine_reuses_cached_reports(self, small_multiplier_library):
        from repro.autoax import components_from_library

        engine = BatchEvaluator(small_multiplier_library.reference())
        engine.evaluate_errors(list(small_multiplier_library))
        before = engine.stats()
        components_from_library(small_multiplier_library, 3, engine=engine, max_error=0.5)
        after = engine.stats()
        # The error pass inside components_from_library was fully cached.
        assert after.hits - before.hits >= len(small_multiplier_library)


class TestFlowIntegration:
    def test_flow_shares_cache_across_stages(self, small_multiplier_library):
        from repro.core import ApproxFpgasConfig, ApproxFpgasFlow

        config = ApproxFpgasConfig(
            training_fraction=0.2,
            min_training_circuits=10,
            model_ids=["ML2", "ML4"],
            seed=42,
        )
        flow = ApproxFpgasFlow(small_multiplier_library, config=config)
        flow.run()
        stats = flow.engine.stats()
        # Stage 7/9 re-requests circuits already synthesized in stage 3, and
        # perturbation libraries contain structural duplicates: the engine
        # must have served a meaningful share of requests from the cache.
        assert stats.hits > 0
        # Re-running the same flow over the same engine is almost all hits.
        before = flow.engine.stats()
        ApproxFpgasFlow(
            small_multiplier_library,
            config=config,
            error_evaluator=flow.error_evaluator,
            fpga_synthesizer=flow.fpga,
            asic_synthesizer=flow.asic,
            engine=flow.engine,
        ).run()
        delta_hits = flow.engine.stats().hits - before.hits
        delta_misses = flow.engine.stats().misses - before.misses
        assert delta_misses == 0
        assert delta_hits > 0
