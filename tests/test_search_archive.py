"""Property-based tests of the shared Pareto-archive core (`repro.search`).

The archive is the foundation every strategy and the methodology's front
bookkeeping now stand on, so its invariants are pinned with hypothesis
sweeps rather than hand-picked cases: insertion-order invariance,
no-dominated-survivor (equivalence with the batch filter), idempotent
re-insertion, crowding-distance boundary behaviour and JSON round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import dominates, pareto_front_indices
from repro.search import (
    ParetoArchive,
    crowding_distances,
    non_dominated_ranks,
    select_next_population,
)

pytestmark = pytest.mark.search

# Coarse coordinate grids make dominance ties and duplicates common, which
# is where archive bookkeeping can go wrong.
coordinate = st.integers(min_value=0, max_value=6).map(float)
point_lists = st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=24)
point_lists_3d = st.lists(st.tuples(coordinate, coordinate, coordinate), min_size=1, max_size=18)


def filled_archive(points, *, keys=None, dedupe=True) -> ParetoArchive:
    archive = ParetoArchive(num_objectives=len(points[0]), dedupe_keys=dedupe)
    for index, objectives in enumerate(points):
        key = None if keys is None else keys[index]
        archive.insert(key, objectives, item=index)
    return archive


def archive_contents(archive: ParetoArchive):
    return sorted((entry.key, entry.objectives) for entry in archive)


# --------------------------------------------------------------------- #
# Insertion invariants
# --------------------------------------------------------------------- #
class TestInsertionInvariants:
    @given(points=point_lists, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_insertion_order_invariance(self, points, seed):
        """The surviving set never depends on the order points arrive in."""
        keys = [f"p{i}" for i in range(len(points))]
        forward = filled_archive(points, keys=keys)
        permutation = np.random.default_rng(seed).permutation(len(points))
        shuffled = ParetoArchive(dedupe_keys=True)
        for index in permutation:
            shuffled.insert(keys[index], points[index], item=int(index))
        assert archive_contents(forward) == archive_contents(shuffled)

    @given(points=point_lists_3d)
    @settings(max_examples=120, deadline=None)
    def test_no_dominated_survivor_and_batch_equivalence(self, points):
        """Incremental insertion equals the repo's batch Pareto filter.

        In particular no surviving entry is dominated by *any* inserted
        point, and every batch-front point survives (duplicates included).
        """
        archive = filled_archive(points, keys=[f"p{i}" for i in range(len(points))])
        survivors = archive.objective_array()
        for survivor in survivors:
            assert not any(dominates(np.asarray(point), survivor) for point in points)
        batch_front = sorted(tuple(map(float, points[i])) for i in pareto_front_indices(points))
        assert sorted(tuple(row) for row in survivors) == batch_front

    @given(points=point_lists)
    @settings(max_examples=120, deadline=None)
    def test_idempotent_reinsertion(self, points):
        """Re-inserting every point leaves the archive bit-identical."""
        keys = [f"p{i}" for i in range(len(points))]
        archive = filled_archive(points, keys=keys)
        before = archive.entries()
        for key, objectives in zip(keys, points):
            survived = archive.insert(key, objectives)
            assert not survived  # already represented (or dominated): no-op
        assert archive.entries() == before

    @given(points=point_lists)
    @settings(max_examples=80, deadline=None)
    def test_keyless_insertion_keeps_duplicates(self, points):
        """key=None entries have no identity: duplicates occupy one slot each,
        matching the historical list-based strategies."""
        archive = filled_archive(points + points, dedupe=False)
        front = pareto_front_indices(np.array(points + points))
        assert len(archive) == len(front)

    def test_key_replacement_updates_objectives(self):
        archive = ParetoArchive()
        assert archive.insert("a", (1.0, 1.0))
        assert archive.insert("a", (0.5, 0.5))
        assert archive_contents(archive) == [("a", (0.5, 0.5))]
        # A stale entry is dropped even when its replacement is dominated.
        assert archive.insert("b", (0.1, 0.1))
        assert not archive.insert("a", (2.0, 2.0))
        assert archive_contents(archive) == [("b", (0.1, 0.1))]

    def test_rejects_bad_objectives(self):
        archive = ParetoArchive(num_objectives=2)
        with pytest.raises(ValueError):
            archive.insert("a", (1.0, np.nan))
        with pytest.raises(ValueError):
            archive.insert("a", (1.0, np.inf))
        with pytest.raises(ValueError):
            archive.insert("a", (1.0,))
        with pytest.raises(ValueError):
            archive.insert("a", ())


# --------------------------------------------------------------------- #
# Crowding distance
# --------------------------------------------------------------------- #
class TestCrowdingDistance:
    def test_two_or_fewer_points_are_all_boundary(self):
        assert np.all(np.isinf(crowding_distances(np.array([[1.0, 2.0]]))))
        assert np.all(np.isinf(crowding_distances(np.array([[1.0, 2.0], [2.0, 1.0]]))))
        assert crowding_distances(np.empty((0, 2))).shape == (0,)

    def test_boundary_points_are_infinite_interior_finite(self):
        points = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distances = crowding_distances(points)
        assert np.isinf(distances[0]) and np.isinf(distances[3])
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])
        # Evenly spaced interior points share the same crowding.
        assert distances[1] == pytest.approx(distances[2])

    def test_constant_objective_contributes_nothing(self):
        points = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0], [4.0, 5.0]])
        distances = crowding_distances(points)
        assert np.isinf(distances[0]) and np.isinf(distances[3])
        # Only the first objective spreads; gaps are (2-0)/4 and (4-1)/4.
        assert distances[1] == pytest.approx(0.5)
        assert distances[2] == pytest.approx(0.75)

    def test_all_identical_points_all_infinite(self):
        # Every point is simultaneously a minimum and maximum of both
        # objectives; the stable argsort puts the first/last at the
        # boundary and zero span skips the interior accumulation.
        points = np.tile([[2.0, 2.0]], (5, 1))
        distances = crowding_distances(points)
        assert np.isinf(distances[0]) and np.isinf(distances[-1])
        assert np.all(distances[1:-1] == 0.0)

    @given(points=point_lists)
    @settings(max_examples=80, deadline=None)
    def test_distances_nonnegative(self, points):
        distances = crowding_distances(np.array(points))
        assert np.all(distances >= 0.0)

    def test_truncate_crowding_prefers_boundaries(self):
        archive = ParetoArchive()
        for i, point in enumerate([(0.0, 4.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]):
            archive.insert(f"p{i}", point)
        archive.truncate_crowding(3)
        kept = archive.keys()
        assert "p0" in kept and "p4" in kept and len(kept) == 3

    def test_truncate_spread_matches_legacy_linspace(self):
        entries = [(float(i), float(9 - i)) for i in range(10)]
        archive = ParetoArchive(dedupe_keys=False)
        for index, point in enumerate(entries):
            archive.insert(None, point, item=index)
        archive.truncate_spread(4)
        indices = np.linspace(0, 9, 4).round().astype(int)
        assert [entry.item for entry in archive] == [int(i) for i in indices]


# --------------------------------------------------------------------- #
# Ranks and environmental selection
# --------------------------------------------------------------------- #
class TestRanksAndSelection:
    @given(points=point_lists)
    @settings(max_examples=80, deadline=None)
    def test_rank_zero_is_the_pareto_front(self, points):
        points = np.array(points)
        ranks = non_dominated_ranks(points)
        assert sorted(np.nonzero(ranks == 0)[0]) == sorted(pareto_front_indices(points))
        assert np.all(ranks >= 0)

    @given(points=point_lists)
    @settings(max_examples=80, deadline=None)
    def test_same_rank_points_do_not_dominate_each_other(self, points):
        points = np.array(points)
        ranks = non_dominated_ranks(points)
        for rank in range(int(ranks.max()) + 1):
            front = points[ranks == rank]
            for a in front:
                for b in front:
                    assert not dominates(a, b)

    @given(points=point_lists, fraction=st.floats(0.1, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_selection_prefers_better_ranks(self, points, fraction):
        points = np.array(points)
        size = max(1, int(round(fraction * len(points))))
        selected = select_next_population(points, size)
        assert len(selected) == size
        assert len(set(selected)) == size
        ranks = non_dominated_ranks(points)
        # Whole fronts are taken in rank order, so no unselected point may
        # out-rank a selected one.
        worst_selected = max(ranks[i] for i in selected)
        unselected = [i for i in range(len(points)) if i not in set(selected)]
        assert all(ranks[i] >= worst_selected for i in unselected)


# --------------------------------------------------------------------- #
# Checkpoint round-trips
# --------------------------------------------------------------------- #
class TestCheckpointing:
    @given(points=point_lists)
    @settings(max_examples=60, deadline=None)
    def test_payload_roundtrip_is_exact(self, points):
        archive = filled_archive(points, keys=[f"p{i}" for i in range(len(points))])
        restored = ParetoArchive.from_payload(archive.to_payload())
        assert restored.entries() == archive.entries()
        assert restored.num_objectives == archive.num_objectives
        assert restored.dedupe_keys == archive.dedupe_keys

    def test_save_load_through_json_directory_store(self, tmp_path):
        from repro.io.persistence import JsonDirectoryStore

        store = JsonDirectoryStore(tmp_path / "archives")
        archive = ParetoArchive()
        archive.insert("a", (1.0, 2.0), item=[1, 2, 3])
        archive.insert("b", (2.0, 1.0), item={"genome": [0, 1]})
        archive.save(store, "search:test:archive")
        restored = ParetoArchive.load(store, "search:test:archive")
        assert restored.entries() == archive.entries()
        assert ParetoArchive.load(store, "search:missing") is None

    def test_hypervolume_matches_core_helper(self):
        from repro.core.pareto import hypervolume_2d

        points = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        archive = filled_archive(points, keys=[f"p{i}" for i in range(len(points))])
        reference = (5.0, 5.0)
        assert archive.hypervolume(reference) == pytest.approx(
            hypervolume_2d(np.array(points), reference)
        )
        assert archive.hypervolume() > 0.0
        assert ParetoArchive(num_objectives=2).hypervolume((1.0, 1.0)) == 0.0


# --------------------------------------------------------------------- #
# Hypervolume clamping (regression)
# --------------------------------------------------------------------- #
class TestHypervolumeClamp:
    """Archive members at or beyond the reference must contribute zero
    area -- the volume is never negative and never inflated by out-of-box
    points (regression for the unclamped staircase strips)."""

    def test_reference_inside_the_front_scores_zero(self):
        archive = filled_archive([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)],
                                 keys=["a", "b", "c"])
        assert archive.hypervolume((0.5, 0.5)) == 0.0

    def test_out_of_reference_members_are_excluded(self):
        from repro.core.pareto import hypervolume_2d

        inside = [(1.0, 2.0), (2.0, 1.0)]
        outside = [(0.5, 9.0), (9.0, 0.5)]  # dominate nothing inside the box
        reference = (4.0, 4.0)
        archive = filled_archive(
            inside + outside, keys=[f"p{i}" for i in range(4)]
        )
        assert archive.hypervolume(reference) == pytest.approx(
            hypervolume_2d(np.array(inside), reference)
        )

    @given(points=point_lists)
    @settings(max_examples=80, deadline=None)
    def test_fuzzed_volumes_are_never_negative(self, points):
        archive = filled_archive(points, dedupe=False)
        # Tight references land inside or below the front routinely.
        for reference in [(0.0, 0.0), (3.0, 3.0), (1.0, 6.0)]:
            assert archive.hypervolume(reference) >= 0.0
