"""Property-based tests for the simulation kernels.

The project avoids extra dependencies, so "property-based" here means
seeded randomised sweeps over widths, values and circuits rather than a
hypothesis-style shrinker; every case is deterministic and reproducible
from the seeds below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.simulate import (
    bits_to_words,
    exhaustive_operands,
    exhaustive_simulate,
    simulate_words,
    words_to_bits,
)
from repro.engine import BatchEvaluator, EvalCache
from repro.generators import (
    array_multiplier,
    perturbation_sweep,
    ripple_carry_adder,
)


class TestWordBitRoundTrip:
    @pytest.mark.parametrize("width", list(range(1, 17)) + [24, 32])
    def test_words_to_bits_round_trip_random_values(self, width):
        rng = np.random.default_rng(1000 + width)
        values = rng.integers(0, 1 << min(width, 62), size=257, dtype=np.int64)
        values = values % (1 << width)
        bits = words_to_bits(values, width)
        assert bits.shape == (len(values), width)
        assert bits.dtype == bool
        assert np.array_equal(bits_to_words(bits), values)

    @pytest.mark.parametrize("width", range(1, 13))
    def test_bits_to_words_round_trip_random_bits(self, width):
        rng = np.random.default_rng(2000 + width)
        bits = rng.random((128, width)) < 0.5
        values = bits_to_words(bits)
        assert np.array_equal(words_to_bits(values, width), bits)

    def test_edge_values(self):
        for width in (1, 7, 16):
            values = np.array([0, (1 << width) - 1], dtype=np.int64)
            assert np.array_equal(bits_to_words(words_to_bits(values, width)), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            words_to_bits(np.array([4]), 2)
        with pytest.raises(ValueError):
            words_to_bits(np.array([-1]), 4)


class TestExhaustiveEqualsPerPattern:
    """``exhaustive_simulate`` must equal one ``simulate_words`` call per pattern."""

    @pytest.mark.parametrize(
        "make_circuit",
        [
            lambda: ripple_carry_adder(3),
            lambda: array_multiplier(3),
            lambda: ripple_carry_adder(4),
        ],
    )
    def test_matches_per_pattern_simulation(self, make_circuit):
        circuit = make_circuit()
        batched = exhaustive_simulate(circuit)
        operands = exhaustive_operands(circuit)
        names = list(operands)
        num_patterns = len(operands[names[0]])
        assert len(batched) == num_patterns == 1 << circuit.num_inputs
        for pattern in range(num_patterns):
            single = simulate_words(
                circuit, {name: np.array([operands[name][pattern]]) for name in names}
            )
            assert single.shape == (1,)
            assert single[0] == batched[pattern]

    def test_perturbed_circuits_match_too(self):
        base = array_multiplier(3)
        for variant in perturbation_sweep(base, count=6, seed=99):
            batched = exhaustive_simulate(variant)
            operands = exhaustive_operands(variant)
            names = list(operands)
            rng = np.random.default_rng(7)
            for pattern in rng.integers(0, len(batched), size=16):
                single = simulate_words(
                    variant,
                    {name: np.array([operands[name][pattern]]) for name in names},
                )
                assert single[0] == batched[pattern]


class TestEngineBitIdentical:
    """Engine-cached results must be bit-identical to uncached evaluation."""

    def test_cached_metrics_equal_uncached_across_random_circuits(self):
        reference = array_multiplier(4)
        variants = perturbation_sweep(reference, count=20, seed=5, max_mutations=6)
        cached_engine = BatchEvaluator(reference, mode="serial")
        uncached = [
            BatchEvaluator(reference, cache=EvalCache(), mode="serial")
            .evaluate_errors([variant])[0]
            for variant in variants
        ]
        # Evaluate twice through one engine: the second pass is pure cache.
        cached_engine.evaluate_errors(variants)
        cached = cached_engine.evaluate_errors(variants)
        for fresh, hit in zip(uncached, cached):
            assert fresh.metrics == hit.metrics
            assert fresh.num_patterns == hit.num_patterns
            assert fresh.method == hit.method

    def test_disk_roundtrip_preserves_exact_floats(self, tmp_path):
        reference = array_multiplier(4)
        variants = perturbation_sweep(reference, count=8, seed=11)
        direct = BatchEvaluator(reference, mode="serial").evaluate_errors(variants)
        cold = BatchEvaluator(
            reference, cache=EvalCache(disk_path=tmp_path / "d"), mode="serial"
        )
        cold.evaluate_errors(variants)
        warm = BatchEvaluator(
            reference, cache=EvalCache(disk_path=tmp_path / "d"), mode="serial"
        )
        restored = warm.evaluate_errors(variants)
        assert warm.stats().misses == 0
        for fresh, loaded in zip(direct, restored):
            # JSON round-trips IEEE doubles exactly via repr-based encoding.
            assert fresh.metrics == loaded.metrics
