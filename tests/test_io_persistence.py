"""Tests of the persistence / export helpers."""

import json

import pytest

from repro.core import ApproxFpgasConfig, ApproxFpgasFlow
from repro.io import (
    export_library,
    export_pareto_rtl,
    library_catalog,
    load_result_summary,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def tiny_flow_result(small_multiplier_library):
    config = ApproxFpgasConfig(
        training_fraction=0.2,
        min_training_circuits=12,
        num_pseudo_fronts=2,
        top_k_models=2,
        model_ids=["ML4", "ML11", "ML18"],
        seed=3,
        evaluate_coverage=True,
    )
    return ApproxFpgasFlow(small_multiplier_library, config=config).run()


def test_library_catalog_structure(small_multiplier_library):
    catalog = library_catalog(small_multiplier_library)
    assert catalog["size"] == len(small_multiplier_library)
    assert catalog["kind"] == "multiplier"
    assert len(catalog["circuits"]) == len(small_multiplier_library)
    assert all("gates" in entry for entry in catalog["circuits"])
    json.dumps(catalog)  # must be JSON-serialisable


def test_export_library_writes_catalog_and_rtl(tmp_path, small_multiplier_library):
    catalog_path = export_library(small_multiplier_library, tmp_path / "lib")
    assert catalog_path.exists()
    rtl_files = list((tmp_path / "lib" / "rtl").glob("*.v"))
    assert len(rtl_files) == len(small_multiplier_library)
    text = rtl_files[0].read_text()
    assert text.startswith("module ")


def test_export_library_without_rtl(tmp_path, small_multiplier_library):
    export_library(small_multiplier_library, tmp_path / "norlt", rtl=False)
    assert not (tmp_path / "norlt" / "rtl").exists()


def test_result_roundtrip_via_json(tmp_path, tiny_flow_result):
    path = save_result(tiny_flow_result, tmp_path / "result.json")
    loaded = load_result_summary(path)
    assert loaded["library"] == tiny_flow_result.library_name
    assert set(loaded["records"]) == set(tiny_flow_result.records)
    assert set(loaded["parameters"]) == {"latency", "power", "area"}
    for parameter, entry in loaded["parameters"].items():
        assert entry["final_front"]
        assert 0.0 <= entry["coverage"] <= 1.0
    assert loaded["exploration_cost"]["speedup"] > 0.0


def test_result_to_dict_includes_fpga_reports_when_synthesized(tiny_flow_result):
    dump = result_to_dict(tiny_flow_result)
    synthesized = [entry for entry in dump["records"].values() if "fpga" in entry]
    assert synthesized, "the flow must synthesize at least the training subset"
    assert all("asic" in entry and "error" in entry for entry in dump["records"].values())


def test_export_pareto_rtl(tmp_path, tiny_flow_result, small_multiplier_library):
    written = export_pareto_rtl(
        tiny_flow_result, small_multiplier_library, tmp_path / "pareto", parameter="area", limit=5
    )
    assert 1 <= len(written) <= 5
    for path in written:
        assert path.exists()
        assert "module" in path.read_text()
