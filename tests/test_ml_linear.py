"""Tests of the linear model family."""

import numpy as np
import pytest

from repro.ml import (
    BayesianRidgeRegression,
    LassoRegression,
    LeastAngleRegression,
    LinearRegression,
    MeanRegressor,
    RidgeRegression,
    SGDRegressor,
    ScaledRegressor,
    r2_score,
)


def make_linear_data(n=80, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, size=(n, 4))
    coefficients = np.array([2.0, -1.0, 0.5, 0.0])
    y = X @ coefficients + 3.0 + noise * rng.normal(0, 1, n)
    return X, y, coefficients


def test_ols_recovers_coefficients():
    X, y, coefficients = make_linear_data(noise=0.0)
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, coefficients, atol=1e-8)
    assert model.intercept_ == pytest.approx(3.0, abs=1e-8)
    assert model.score(X, y) == pytest.approx(1.0)


def test_ols_without_intercept():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([2.0, 4.0, 6.0])
    model = LinearRegression(fit_intercept=False).fit(X, y)
    assert model.intercept_ == 0.0
    assert model.coef_[0] == pytest.approx(2.0)


def test_ridge_shrinks_towards_zero():
    X, y, _ = make_linear_data(noise=0.0)
    ols = LinearRegression().fit(X, y)
    ridge = RidgeRegression(alpha=100.0).fit(X, y)
    assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)


def test_ridge_alpha_zero_matches_ols():
    X, y, _ = make_linear_data(noise=0.0)
    ridge = RidgeRegression(alpha=1e-10).fit(X, y)
    ols = LinearRegression().fit(X, y)
    assert np.allclose(ridge.coef_, ols.coef_, atol=1e-5)


def test_bayesian_ridge_close_to_truth():
    X, y, coefficients = make_linear_data(noise=0.05)
    model = BayesianRidgeRegression().fit(X, y)
    assert np.allclose(model.coef_, coefficients, atol=0.15)
    assert model.alpha_ > 0.0 and model.lambda_ > 0.0
    assert model.score(X, y) > 0.95


def test_lasso_produces_sparse_solution():
    X, y, _ = make_linear_data(noise=0.0)
    model = LassoRegression(alpha=0.5).fit(X, y)
    # The truly-zero coefficient must stay (near) zero under L1 pressure.
    assert abs(model.coef_[3]) < 0.05
    assert model.score(X, y) > 0.8


def test_lars_selects_relevant_features():
    X, y, _ = make_linear_data(noise=0.0)
    model = LeastAngleRegression(n_nonzero_coefs=2).fit(X, y)
    assert len(model.active_) <= 2
    assert 0 in model.active_  # strongest coefficient first


def test_lars_full_fit_accuracy():
    X, y, _ = make_linear_data(noise=0.05)
    model = LeastAngleRegression().fit(X, y)
    assert model.score(X, y) > 0.95


def test_sgd_with_scaling_learns_linear_function():
    X, y, _ = make_linear_data(n=200, noise=0.05)
    model = ScaledRegressor(SGDRegressor(max_iter=300, random_state=1), scale_target=True).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.9


def test_models_validate_hyperparameters():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)
    with pytest.raises(ValueError):
        LassoRegression(alpha=-0.1)


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        LinearRegression().predict(np.zeros((2, 3)))


def test_feature_count_mismatch_raises():
    X, y, _ = make_linear_data()
    model = LinearRegression().fit(X, y)
    with pytest.raises(ValueError):
        model.predict(np.zeros((2, 7)))


def test_mean_regressor_baseline():
    X, y, _ = make_linear_data()
    model = MeanRegressor().fit(X, y)
    assert np.allclose(model.predict(X), y.mean())


def test_clone_resets_fitted_state():
    X, y, _ = make_linear_data()
    model = RidgeRegression(alpha=2.0).fit(X, y)
    fresh = model.clone()
    assert fresh.alpha == 2.0
    with pytest.raises(RuntimeError):
        fresh.predict(X)
