"""Unit and property-based tests for the simulation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    bits_to_words,
    exhaustive_operands,
    exhaustive_simulate,
    random_operands,
    simulate_bits,
    simulate_words,
    words_to_bits,
)
from repro.generators import ripple_carry_adder


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
def test_words_bits_roundtrip(values):
    bits = words_to_bits(np.array(values), 8)
    assert np.array_equal(bits_to_words(bits), np.array(values))


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=2**16 - 1),
)
def test_words_to_bits_lsb_first(width, value):
    value = value % (1 << width)
    bits = words_to_bits(np.array([value]), width)[0]
    reconstructed = sum(int(bit) << position for position, bit in enumerate(bits))
    assert reconstructed == value


def test_words_to_bits_rejects_out_of_range():
    with pytest.raises(ValueError):
        words_to_bits(np.array([256]), 8)
    with pytest.raises(ValueError):
        words_to_bits(np.array([-1]), 8)


def test_words_to_bits_rejects_float_operands():
    """Regression: float arrays used to slip through and truncate silently."""
    with pytest.raises(TypeError):
        words_to_bits(np.array([1.5, 2.0]), 8)
    with pytest.raises(TypeError):
        words_to_bits([0.25], 8)


def test_words_to_bits_rejects_unsigned_overflow_before_wraparound():
    """Out-of-range uint64 values raise instead of wrapping through int64."""
    with pytest.raises(ValueError):
        words_to_bits(np.array([2**63], dtype=np.uint64), 8)


def test_words_to_bits_accepts_any_integer_dtype():
    for dtype in (np.uint8, np.int16, np.uint32, np.int64):
        bits = words_to_bits(np.array([5, 250], dtype=dtype), 8)
        assert np.array_equal(bits_to_words(bits), [5, 250])
    assert np.array_equal(bits_to_words(words_to_bits(np.array([True, False]), 1)), [1, 0])


@pytest.mark.parametrize("width", [62, 63, 64])
def test_bits_to_words_wide_words_do_not_overflow(width):
    """Regression: int64 weights went negative at bit 63, corrupting every
    word of width >= 64 (and risking the int64 boundary at 63)."""
    values = [0, 1, (1 << (width - 1)), (1 << width) - 1, (1 << (width - 1)) | 1]
    bits = np.zeros((len(values), width), dtype=bool)
    for row, value in enumerate(values):
        for bit in range(width):
            bits[row, bit] = (value >> bit) & 1
    words = bits_to_words(bits)
    assert [int(word) for word in words] == values
    assert words.dtype == (np.uint64 if width == 64 else np.int64)


def test_bits_to_words_beyond_64_bits_uses_python_ints():
    width = 70
    value = (1 << width) - 3
    bits = np.array([[bool((value >> bit) & 1) for bit in range(width)]], dtype=bool)
    words = bits_to_words(bits)
    assert words.dtype == object
    assert words[0] == value


def test_simulate_words_rejects_float_operands(adder8):
    """Regression: simulate_words validates operands like words_to_bits."""
    with pytest.raises(TypeError):
        simulate_words(adder8, {"a": np.array([1.5, 2.0]), "b": np.array([1, 2])})


def test_simulate_bits_shape_check(adder8):
    with pytest.raises(ValueError):
        simulate_bits(adder8, np.zeros((4, 3), dtype=bool))


def test_simulate_words_missing_operand(adder8):
    with pytest.raises(ValueError):
        simulate_words(adder8, {"a": [1, 2]})


def test_simulate_words_mismatched_lengths(adder8):
    with pytest.raises(ValueError):
        simulate_words(adder8, {"a": [1, 2], "b": [1]})


def test_simulate_words_rejects_unknown_operand_names(adder8):
    """Regression: a typo'd extra operand key used to be dropped silently."""
    with pytest.raises(ValueError, match="unknown operand names"):
        simulate_words(adder8, {"a": [1, 2], "b": [3, 4], "a ": [5, 6]})
    with pytest.raises(ValueError, match=r"input words are \['a', 'b'\]"):
        simulate_words(adder8, {"a": [1], "b": [2], "carry": [0]})


@settings(max_examples=25)
@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
)
def test_adder_simulation_matches_python_addition(a_values, b_values):
    length = min(len(a_values), len(b_values))
    a = np.array(a_values[:length])
    b = np.array(b_values[:length])
    adder = ripple_carry_adder(8)
    assert np.array_equal(adder.evaluate_words({"a": a, "b": b}), a + b)


def test_exhaustive_operands_cover_all_combinations(multiplier4):
    operands = exhaustive_operands(multiplier4)
    assert len(operands["a"]) == 256
    pairs = set(zip(operands["a"].tolist(), operands["b"].tolist()))
    assert len(pairs) == 256


def test_exhaustive_simulate_matches_reference(multiplier4):
    outputs = exhaustive_simulate(multiplier4)
    operands = exhaustive_operands(multiplier4)
    assert np.array_equal(outputs, operands["a"] * operands["b"])


def test_exhaustive_simulate_rejects_wide_circuits():
    wide = ripple_carry_adder(16)
    with pytest.raises(ValueError):
        exhaustive_simulate(wide)


def test_random_operands_within_range(adder8, rng):
    operands = random_operands(adder8, 500, rng)
    for word in ("a", "b"):
        assert operands[word].min() >= 0
        assert operands[word].max() < 256
        assert len(operands[word]) == 500
