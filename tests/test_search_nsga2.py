"""Determinism and checkpoint/resume-identity tests for the NSGA-II search.

The generic engine (`repro.search.run_nsga2`) is exercised on a cheap toy
problem; the AutoAx adapter (`SEARCH_STRATEGIES["nsga2"]`) on the shared
``autoax_searchables`` fixture.  The resume contract is the strong one:
interrupt after generation N, resume towards the full horizon, and the
final archive/population must be **bit-identical** to an uninterrupted run
-- which requires the checkpoint to carry the exact RNG stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.persistence import JsonDirectoryStore
from repro.search import Nsga2Config, genome_token, run_nsga2

pytestmark = pytest.mark.search


# --------------------------------------------------------------------- #
# Toy problem: minimise (sum of genes, sum of squared distances to 7)
# --------------------------------------------------------------------- #
GENE_RANGE = 11
GENOME_LENGTH = 4


def toy_random_genome(rng: np.random.Generator):
    return tuple(int(v) for v in rng.integers(0, GENE_RANGE, GENOME_LENGTH))


def toy_mutate(genome, rng: np.random.Generator):
    slot = int(rng.integers(0, GENOME_LENGTH))
    genes = list(genome)
    genes[slot] = int(rng.integers(0, GENE_RANGE))
    return tuple(genes)


def toy_crossover(a, b, rng: np.random.Generator):
    take_first = rng.random(GENOME_LENGTH) < 0.5
    return tuple(x if flag else y for x, y, flag in zip(a, b, take_first))


def toy_evaluate(genomes):
    return [
        (float(sum(genome)), float(sum((gene - 7) ** 2 for gene in genome)))
        for genome in genomes
    ]


def toy_run(generations=6, seed=9, store=None, run_id="toy", resume=True, **overrides):
    config = Nsga2Config(
        population_size=overrides.pop("population_size", 12),
        generations=generations,
        seed=seed,
        **overrides,
    )
    return run_nsga2(
        random_genome=toy_random_genome,
        mutate=toy_mutate,
        crossover=toy_crossover,
        evaluate=toy_evaluate,
        config=config,
        store=store,
        run_id=run_id,
        token="toy-problem-v1",
        resume=resume,
    )


def archive_signature(result):
    return [(entry.key, entry.objectives, entry.item) for entry in result.archive]


class TestGenericEngine:
    def test_seeded_determinism(self):
        first = toy_run(seed=9)
        second = toy_run(seed=9)
        assert archive_signature(first) == archive_signature(second)
        assert first.population == second.population
        assert first.objectives == second.objectives
        assert first.evaluations == second.evaluations
        assert toy_run(seed=10).population != first.population

    def test_budget_and_archive_are_consistent(self):
        result = toy_run(generations=5)
        assert result.generations_run == 5
        assert result.evaluations == 12 * 6  # initial population + 5 generations
        assert len(result.history) == 6
        assert 1 <= len(result.archive) <= Nsga2Config().archive_limit
        # The archive is mutually non-dominated and keyed by genome.
        points = result.archive.objective_array()
        from repro.core.pareto import dominates

        for i, a in enumerate(points):
            assert not any(dominates(b, a) for j, b in enumerate(points) if i != j)
        for entry in result.archive:
            assert entry.key == genome_token(tuple(entry.item))

    def test_archive_improves_or_holds_over_generations(self):
        result = toy_run(generations=8)
        minima = [stats["objective_minima"] for stats in result.history]
        for earlier, later in zip(minima, minima[1:]):
            assert later[0] <= earlier[0] + 1e-12
            assert later[1] <= earlier[1] + 1e-12

    def test_interrupt_resume_identity(self, tmp_path):
        """Interrupt after generation N, resume: bit-identical final state."""
        store = JsonDirectoryStore(tmp_path / "ckpt")
        uninterrupted = toy_run(generations=7)

        partial = toy_run(generations=3, store=store)
        assert partial.resumed_from is None
        resumed = toy_run(generations=7, store=store)
        assert resumed.resumed_from == 3

        assert archive_signature(resumed) == archive_signature(uninterrupted)
        assert resumed.population == uninterrupted.population
        assert resumed.objectives == uninterrupted.objectives
        assert resumed.evaluations == uninterrupted.evaluations
        assert [s["archive_size"] for s in resumed.history] == [
            s["archive_size"] for s in uninterrupted.history
        ]

    def test_resume_from_completed_run_is_a_noop(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "ckpt")
        full = toy_run(generations=4, store=store)
        again = toy_run(generations=4, store=store)
        assert again.resumed_from == 4
        assert again.evaluations == full.evaluations
        assert archive_signature(again) == archive_signature(full)

    def test_changed_token_invalidates_checkpoints(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "ckpt")
        toy_run(generations=3, store=store)
        config = Nsga2Config(population_size=12, generations=5, seed=9)
        fresh = run_nsga2(
            random_genome=toy_random_genome,
            mutate=toy_mutate,
            crossover=toy_crossover,
            evaluate=toy_evaluate,
            config=config,
            store=store,
            run_id="toy",
            token="toy-problem-v2",  # changed problem: must not resume
        )
        assert fresh.resumed_from is None

    def test_resume_false_restarts(self, tmp_path):
        store = JsonDirectoryStore(tmp_path / "ckpt")
        toy_run(generations=3, store=store)
        fresh = toy_run(generations=3, store=store, resume=False)
        assert fresh.resumed_from is None

    def test_longer_generations_pick_up_shorter_checkpoint(self, tmp_path):
        """A horizon change alone must not invalidate the checkpoint."""
        store = JsonDirectoryStore(tmp_path / "ckpt")
        toy_run(generations=2, store=store)
        resumed = toy_run(generations=3, store=store)
        assert resumed.resumed_from == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Nsga2Config(population_size=1)
        with pytest.raises(ValueError):
            Nsga2Config(generations=-1)
        with pytest.raises(ValueError):
            Nsga2Config(crossover_rate=1.5)
        with pytest.raises(ValueError):
            Nsga2Config(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            Nsga2Config(tournament_size=0)
        with pytest.raises(ValueError):
            Nsga2Config(archive_limit=0)


# --------------------------------------------------------------------- #
# The AutoAx adapter strategy
# --------------------------------------------------------------------- #
def _signature(entries):
    return [
        (
            entry.config.multiplier_indices,
            entry.config.adder_indices,
            entry.quality,
            tuple(sorted(entry.cost.items())),
        )
        for entry in entries
    ]


class TestNsga2Strategy:
    def test_registered_and_reachable_from_config(self):
        from repro.autoax import AutoAxConfig, SEARCH_STRATEGIES

        assert "nsga2" in SEARCH_STRATEGIES
        config = AutoAxConfig(search_strategy="nsga2")
        assert config.search_strategy == "nsga2"
        with pytest.raises(ValueError):
            AutoAxConfig(search_strategy="definitely-not-registered")

    def test_seeded_determinism(self, autoax_searchables):
        from repro.autoax import nsga2_pareto

        s = autoax_searchables
        first = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, seed=7)
        second = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, seed=7)
        assert _signature(first) == _signature(second)
        assert first  # at least one candidate survives

    def test_candidates_are_nondominated_estimates(self, autoax_searchables):
        from repro.autoax import nsga2_pareto
        from repro.core import dominates

        s = autoax_searchables
        archive = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, seed=7)
        points = [(entry.cost["area"], 1.0 - entry.quality) for entry in archive]
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                if i != j:
                    assert not dominates(np.array(b), np.array(a))
        for entry in archive:
            assert 0.0 <= entry.quality <= 1.0

    def test_exact_survivor_reevaluation_matches_serial(self, autoax_searchables):
        """images+engine: survivors come back exactly evaluated, bit-identical
        to the serial cached re-evaluation path."""
        from repro.autoax import exact_reevaluation, nsga2_pareto
        from repro.engine import BatchEvaluator, EvalCache

        s = autoax_searchables
        estimated = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, seed=7)
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        exact = nsga2_pareto(
            s.accelerator, s.qor, s.hw, iterations=60, seed=7,
            images=s.images, engine=engine,
        )
        serial = exact_reevaluation(s.accelerator, s.images, estimated)
        assert _signature(exact) == _signature(serial)
        # The engine cached every survivor under the shared axq keys.
        assert engine.stats().size == len({e.config for e in exact})

    def test_interrupt_resume_identity(self, autoax_searchables, tmp_path):
        """The strategy-level resume contract of the satellite task."""
        from repro.autoax import nsga2_pareto

        s = autoax_searchables
        kwargs = dict(population_size=10, seed=5)
        uninterrupted = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, **kwargs)

        store = JsonDirectoryStore(tmp_path / "search-ckpt")
        nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=30, store=store, **kwargs)
        resumed = nsga2_pareto(s.accelerator, s.qor, s.hw, iterations=60, store=store, **kwargs)
        assert _signature(resumed) == _signature(uninterrupted)

    def test_flow_runs_with_nsga2_strategy(self, autoax_searchables):
        """End-to-end staged flow with search_strategy='nsga2' and an engine."""
        from repro.autoax import AutoAxConfig
        from repro.autoax.stages import run_autoax_pipeline
        from repro.engine import BatchEvaluator, EvalCache

        s = autoax_searchables
        config = AutoAxConfig(
            parameters=("area",),
            num_training_samples=10,
            num_random_baseline=8,
            hill_climb_iterations=40,
            image_size=24,
            seed=11,
            search_strategy="nsga2",
        )
        engine = BatchEvaluator(cache=EvalCache(), mode="serial")
        result, run = run_autoax_pipeline(
            s.accelerator.multipliers,
            s.accelerator.adders,
            config,
            images=s.images,
            engine=engine,
        )
        scenario = result.scenarios["area"]
        assert scenario.front
        assert scenario.num_candidates >= len(scenario.front)
        for entry in scenario.candidates:
            assert 0.0 <= entry.quality <= 1.0
            assert set(entry.cost) == {"area", "power", "latency"}
        assert engine.stats().lookups > 0
