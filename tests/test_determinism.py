"""Determinism tests: same seed => identical results, with or without the
engine cache and across serial / parallel engine modes."""

from __future__ import annotations

import pytest

from repro.autoax import exact_reevaluation, hill_climb_pareto, random_search
from repro.engine import BatchEvaluator, EvalCache
from repro.generators import array_multiplier, perturb_netlist, perturbation_sweep


def _config_signature(entries):
    return [
        (
            entry.config.multiplier_indices,
            entry.config.adder_indices,
            entry.quality,
            tuple(sorted(entry.cost.items())),
        )
        for entry in entries
    ]


class TestRandomSearchDeterminism:
    def test_same_seed_identical(self, autoax_searchables):
        s = autoax_searchables
        first = random_search(s.accelerator, s.images, 6, seed=23)
        second = random_search(s.accelerator, s.images, 6, seed=23)
        assert _config_signature(first) == _config_signature(second)

    def test_different_seeds_differ(self, autoax_searchables):
        s = autoax_searchables
        first = random_search(s.accelerator, s.images, 6, seed=23)
        other = random_search(s.accelerator, s.images, 6, seed=24)
        assert _config_signature(first) != _config_signature(other)

    def test_cache_does_not_change_results(self, autoax_searchables):
        s = autoax_searchables
        plain = random_search(s.accelerator, s.images, 6, seed=23)
        cache = EvalCache()
        cached_cold = random_search(s.accelerator, s.images, 6, seed=23, cache=cache)
        cached_warm = random_search(s.accelerator, s.images, 6, seed=23, cache=cache)
        assert _config_signature(plain) == _config_signature(cached_cold)
        assert _config_signature(plain) == _config_signature(cached_warm)
        assert cache.stats().hits >= 6  # warm pass served from the cache

    def test_cache_shared_with_exact_reevaluation(self, autoax_searchables):
        s = autoax_searchables
        cache = EvalCache()
        results = random_search(s.accelerator, s.images, 5, seed=23, cache=cache)
        before = cache.stats()
        reevaluated = exact_reevaluation(s.accelerator, s.images, results, cache=cache)
        after = cache.stats()
        assert after.misses == before.misses  # every candidate was a hit
        assert _config_signature(results) == _config_signature(reevaluated)


class TestHillClimbDeterminism:
    def test_same_seed_identical(self, autoax_searchables):
        s = autoax_searchables
        first = hill_climb_pareto(s.accelerator, s.qor, s.hw, iterations=40, seed=31)
        second = hill_climb_pareto(s.accelerator, s.qor, s.hw, iterations=40, seed=31)
        assert _config_signature(first) == _config_signature(second)

    def test_cache_does_not_change_results(self, autoax_searchables):
        s = autoax_searchables
        plain = hill_climb_pareto(s.accelerator, s.qor, s.hw, iterations=40, seed=31)
        cache = EvalCache()
        cached = hill_climb_pareto(
            s.accelerator, s.qor, s.hw, iterations=40, seed=31, cache=cache
        )
        rerun = hill_climb_pareto(
            s.accelerator, s.qor, s.hw, iterations=40, seed=31, cache=cache
        )
        assert _config_signature(plain) == _config_signature(cached)
        assert _config_signature(plain) == _config_signature(rerun)
        assert cache.stats().hits > 0


class TestEstimatorCacheTokens:
    """Fitted-state tokens must never collide, or stale estimates get served."""

    def test_tokens_unique_per_instance_and_per_fit(self, autoax_searchables):
        from repro.autoax import HwCostEstimator, QorEstimator, collect_training_samples

        s = autoax_searchables
        samples = collect_training_samples(s.accelerator, s.images, 6, seed=3)
        first = QorEstimator().fit(samples)
        second = QorEstimator().fit(samples)
        assert first.cache_token != second.cache_token
        before = first.cache_token
        first.fit(samples)
        assert first.cache_token != before
        assert QorEstimator().cache_token != QorEstimator().cache_token
        assert HwCostEstimator("area").cache_token != HwCostEstimator("area").cache_token


class TestPerturbationDeterminism:
    def test_perturb_netlist_same_seed_identical(self):
        base = array_multiplier(4)
        first = perturb_netlist(base, seed=77)
        second = perturb_netlist(base, seed=77)
        assert first.fingerprint() == second.fingerprint()
        assert first.gates == second.gates
        assert first.output_bits == second.output_bits

    def test_perturbation_sweep_same_seed_identical(self):
        base = array_multiplier(4)
        first = perturbation_sweep(base, count=12, seed=5)
        second = perturbation_sweep(base, count=12, seed=5)
        assert [v.fingerprint() for v in first] == [v.fingerprint() for v in second]
        assert [v.name for v in first] == [v.name for v in second]

    def test_perturbation_sweep_different_seed_differs(self):
        base = array_multiplier(4)
        first = perturbation_sweep(base, count=12, seed=5)
        other = perturbation_sweep(base, count=12, seed=6)
        assert [v.fingerprint() for v in first] != [v.fingerprint() for v in other]


class TestEngineModeDeterminism:
    """Serial and process-pool engine modes must agree bit for bit."""

    @pytest.fixture(scope="class")
    def variants(self):
        base = array_multiplier(4)
        return base, perturbation_sweep(base, count=10, seed=13)

    def test_error_reports_identical(self, variants):
        base, circuits = variants
        serial = BatchEvaluator(base, mode="serial").evaluate_errors(circuits)
        parallel = BatchEvaluator(base, mode="process", max_workers=2).evaluate_errors(
            circuits
        )
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.circuit_name for r in serial] == [r.circuit_name for r in parallel]

    def test_asic_and_fpga_reports_identical(self, variants):
        base, circuits = variants
        serial = BatchEvaluator(base, mode="serial")
        parallel = BatchEvaluator(base, mode="process", max_workers=2)
        assert serial.evaluate_asic(circuits) == parallel.evaluate_asic(circuits)
        assert serial.evaluate_fpga(circuits) == parallel.evaluate_fpga(circuits)

    def test_repeated_parallel_runs_identical(self, variants):
        base, circuits = variants
        first = BatchEvaluator(base, mode="process", max_workers=3).evaluate_errors(
            circuits
        )
        second = BatchEvaluator(base, mode="process", max_workers=2).evaluate_errors(
            circuits
        )
        assert [r.metrics for r in first] == [r.metrics for r in second]
